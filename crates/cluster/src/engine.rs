//! The real distributed backend: master and workers as OS threads over
//! [`repro_xmpi::thread`] channels.
//!
//! Rank 0 is the sacrificed master (paper §4.3); ranks `1..P` are
//! workers holding a replicated override triangle and a cache of
//! first-pass bottom rows. A worker defers any task stamped with a
//! triangle version its replica has not reached yet — an ACCEPTED
//! broadcast and a TASK travel independently, and computing under a
//! too-old triangle would inflate a score that the master would then
//! trust as exact. (Computing under a *newer* replica is provably safe:
//! the result is still a valid upper bound and can never be mistaken for
//! fresh.)
//!
//! The master side runs the recovery loop of [`crate::recovery`]:
//! per-task deadlines with retransmission and exponential backoff,
//! liveness tracking from worker beacons, reassignment away from dead
//! workers, and a master-local fallback when every worker is lost. The
//! worker side beacons IDLE/RESYNC, requests replica resyncs when an
//! ACCEPTED broadcast went missing, and watches its own deadline so a
//! dead master never leaves a thread hanging.

use crate::protocol::{tag, AcceptedMsg, ResultMsg, ResyncMsg, TaskItem, TaskMsg, TelemetryMsg};
use crate::recovery::{
    already_deferred, idle_payload, master_loop, RecoveryConfig, BEACON_PERIOD, WORKER_POLL,
};
use repro_align::{NoMask, Score, Scoring, Seq};
use repro_core::seed::SeedConfig;
use repro_core::{DirtyLog, IncrementalSweeper, OverrideTriangle, SplitMask, TopAlignments};
use repro_obs::{Counter, FlightRecorder, Metric, NoopRecorder, Recorder};
use repro_xmpi::thread::{FaultPlan, ThreadComm};
use repro_xmpi::{Comm, RecvError};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Distributed-engine failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No progress within the deadline (lost messages or dead peers),
    /// and even local fallback could not complete the search.
    Stalled,
    /// The master's own endpoint died; no result can be produced.
    MasterDead,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Stalled => write!(f, "cluster engine stalled (message loss?)"),
            ClusterError::MasterDead => write!(f, "cluster master crashed"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Alignments, stats and triangle — identical alignments to the
    /// sequential engine.
    pub result: TopAlignments,
    /// Total ranks (1 master + workers).
    pub ranks: usize,
}

/// Run the distributed engine with `workers` worker ranks (plus the
/// master), using real threads. `deadline` bounds the total time the
/// master spends waiting on the cluster before it degrades to local
/// computation.
pub fn find_top_alignments_cluster(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    workers: usize,
    deadline: Duration,
) -> Result<ClusterResult, ClusterError> {
    find_top_alignments_cluster_faulty(seq, scoring, count, workers, deadline, FaultPlan::default())
}

/// [`find_top_alignments_cluster`] with the incremental realignment
/// layer on every worker rank: each worker keeps a checkpoint store and
/// a dirty-log replica fed by the ACCEPTED broadcasts it applies, and
/// its per-task tallies travel home inside [`ResultMsg`]. Alignments
/// are bit-identical either way.
pub fn find_top_alignments_cluster_checkpointed(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    workers: usize,
    deadline: Duration,
    checkpoint_budget: Option<usize>,
) -> Result<ClusterResult, ClusterError> {
    run_cluster(
        seq,
        scoring,
        count,
        workers,
        deadline,
        FaultPlan::default(),
        &mut NoopRecorder,
        checkpoint_budget,
        None,
    )
}

/// [`find_top_alignments_cluster_checkpointed`] with seeded split
/// pruning on the master: splits whose seed bound never reaches the
/// acceptance frontier are never assigned to any worker (the master
/// owns the only seed index; per-task bounds ship inside the
/// [`TaskMsg`]). Alignments are bit-identical to the unseeded run.
#[allow(clippy::too_many_arguments)] // thin wrapper over run_cluster
pub fn find_top_alignments_cluster_seeded<R: Recorder>(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    workers: usize,
    deadline: Duration,
    checkpoint_budget: Option<usize>,
    seed: Option<SeedConfig>,
    rec: &mut R,
) -> Result<ClusterResult, ClusterError> {
    run_cluster(
        seq,
        scoring,
        count,
        workers,
        deadline,
        FaultPlan::default(),
        rec,
        checkpoint_budget,
        seed,
    )
}

/// [`find_top_alignments_cluster_checkpointed`] with a flight recorder
/// attached to the master (see
/// [`find_top_alignments_cluster_recorded`]).
pub fn find_top_alignments_cluster_checkpointed_recorded<R: Recorder>(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    workers: usize,
    deadline: Duration,
    checkpoint_budget: Option<usize>,
    rec: &mut R,
) -> Result<ClusterResult, ClusterError> {
    run_cluster(
        seq,
        scoring,
        count,
        workers,
        deadline,
        FaultPlan::default(),
        rec,
        checkpoint_budget,
        None,
    )
}

/// [`find_top_alignments_cluster`] with fault injection on every
/// endpoint (the chaos-test hook).
pub fn find_top_alignments_cluster_faulty(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    workers: usize,
    deadline: Duration,
    faults: FaultPlan,
) -> Result<ClusterResult, ClusterError> {
    find_top_alignments_cluster_faulty_recorded(
        seq,
        scoring,
        count,
        workers,
        deadline,
        faults,
        &mut NoopRecorder,
    )
}

/// [`find_top_alignments_cluster`] with a flight recorder attached to
/// the master: every assign/result/retry/death/resync/fallback incident
/// is mirrored into `rec` as a structured event, which is what makes a
/// chaos-test failure replayable from its JSONL event log.
pub fn find_top_alignments_cluster_recorded<R: Recorder>(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    workers: usize,
    deadline: Duration,
    rec: &mut R,
) -> Result<ClusterResult, ClusterError> {
    find_top_alignments_cluster_faulty_recorded(
        seq,
        scoring,
        count,
        workers,
        deadline,
        FaultPlan::default(),
        rec,
    )
}

/// The fully general entry point: fault injection *and* a recorder.
/// The recorder runs on the master's (calling) thread only, so it needs
/// no synchronisation; worker-side tallies travel home inside
/// [`ResultMsg`] and are folded into the master's stats.
pub fn find_top_alignments_cluster_faulty_recorded<R: Recorder>(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    workers: usize,
    deadline: Duration,
    faults: FaultPlan,
    rec: &mut R,
) -> Result<ClusterResult, ClusterError> {
    run_cluster(
        seq, scoring, count, workers, deadline, faults, rec, None, None,
    )
}

/// The engine body every public entry point funnels into.
#[allow(clippy::too_many_arguments)] // the thin pub wrappers pick the knobs
fn run_cluster<R: Recorder>(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    workers: usize,
    deadline: Duration,
    faults: FaultPlan,
    rec: &mut R,
    checkpoint_budget: Option<usize>,
    seed: Option<SeedConfig>,
) -> Result<ClusterResult, ClusterError> {
    assert!(workers >= 1, "need at least one worker rank");
    let ranks = workers + 1;
    let mut world = ThreadComm::world_with_faults(ranks, faults);
    let master_comm = world.remove(0);

    rec.phase_start(repro_obs::Phase::Recovery);
    let result = std::thread::scope(|scope| {
        for comm in world {
            scope.spawn(move || worker_loop(seq, scoring, comm, deadline, checkpoint_budget));
        }
        master_loop(
            seq,
            scoring,
            count,
            master_comm,
            RecoveryConfig::with_overall(deadline),
            rec,
            seed,
        )
    });
    rec.phase_end(repro_obs::Phase::Recovery);

    result.map(|r| ClusterResult { result: r, ranks })
}

/// The worker body, generic over the transport: the exact same loop
/// serves a simulator thread (rank = a `ThreadComm` endpoint) and a
/// worker process (rank = a `SocketPeer`). See the module docs for the
/// defer/resync discipline.
pub(crate) fn worker_loop<C: Comm>(
    seq: &Seq,
    scoring: &Scoring,
    comm: C,
    deadline: Duration,
    checkpoint_budget: Option<usize>,
) {
    let mut triangle = OverrideTriangle::new(seq.len());
    let mut applied = 0usize; // ACCEPTED broadcasts applied so far
    let mut rows: HashMap<usize, Vec<Score>> = HashMap::new();
    // Incremental realignment state, tracking this worker's replica:
    // the dirty log records exactly the ACCEPTED broadcasts applied, so
    // its version always equals `applied`.
    let mut incr = checkpoint_budget.map(IncrementalSweeper::new);
    let mut dirty = DirtyLog::new();
    let mut deferred: Vec<TaskMsg> = Vec::new();
    // Attempts whose result we already sent once: receiving them again
    // means that result was lost, so its replacement is sent twice (a
    // single copy can phase-lock with a deterministic loss pattern).
    let mut sent: HashSet<(usize, u64)> = HashSet::new();
    let mut last_master = Instant::now();
    let mut next_beacon = Instant::now(); // fires immediately: first IDLE
    // This worker's own telemetry: sweep/resume/queue-wait samples and
    // the scratch-pool tally, shipped home as cumulative snapshots on
    // the beacon cadence. Pure observability — every frame may be lost
    // without changing the search result.
    let mut wrec = FlightRecorder::new();
    let mut tele_seq: u64 = 0;
    let mut pool_sent: u64 = 0;
    let mut idle_since = Instant::now();

    loop {
        // Run any deferred task whose stamp the replica has reached.
        // Deferred frames are single-item (batches are exploded at
        // receipt), so one pop runs one split.
        if let Some(pos) = deferred.iter().position(|t| t.stamp <= applied) {
            let task = deferred.swap_remove(pos);
            let stamp = task.stamp;
            let item = task
                .items
                .into_iter()
                .next()
                .expect("deferred frames are single-item");
            let repeat = !sent.insert((item.r, item.attempt));
            wrec.observe(Metric::QueueWaitNs, idle_since.elapsed().as_nanos() as u64);
            if !run_task(
                seq, scoring, &comm, &triangle, &mut rows, &mut incr, &dirty, applied, stamp,
                item, repeat, &mut wrec,
            ) {
                return; // endpoint (ours or the master's) is dead
            }
            idle_since = Instant::now();
            continue;
        }
        let now = Instant::now();
        if now.duration_since(last_master) > deadline {
            return; // master has gone silent for the whole budget
        }
        if now >= next_beacon {
            // Free workers re-announce IDLE (idempotent at the master —
            // it dedupes per slot — and robust to a lost first one);
            // workers stuck on deferred work send a liveness heartbeat
            // and ask for the acceptances their replica is missing.
            let beacon = if deferred.is_empty() {
                comm.send(0, tag::IDLE, idle_payload(0))
            } else {
                // Sent as a pair: a lone copy each period can land on
                // the same phase of a deterministic loss pattern every
                // time, starving the replica forever. Any received
                // traffic refreshes liveness at the master, so the
                // resync request doubles as the heartbeat.
                let _ = comm.send(0, tag::RESYNC, ResyncMsg { applied }.encode());
                comm.send(0, tag::RESYNC, ResyncMsg { applied }.encode())
            };
            if beacon.is_err() {
                return;
            }
            // Ship the cumulative telemetry snapshot alongside the
            // beacon. The sweeper's pool tally lives outside the
            // recorder, so fold its growth in first.
            let pool = incr.as_ref().map_or(0, |s| s.pool_reuses());
            wrec.add(Counter::PoolReuses, pool - pool_sent);
            pool_sent = pool;
            tele_seq += 1;
            let frame = TelemetryMsg {
                seq: tele_seq,
                fin: false,
                snap: wrec.telemetry_snapshot(),
            };
            if comm.send(0, tag::TELEMETRY, frame.encode()).is_err() {
                return;
            }
            next_beacon = now + BEACON_PERIOD;
        }
        let msg = match comm.recv_timeout(WORKER_POLL) {
            Ok(m) => m,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Disconnected) => return,
        };
        last_master = Instant::now();
        match msg.tag {
            tag::TASK => {
                let Ok(task) = TaskMsg::decode(&msg.payload) else {
                    continue; // corrupted; the master will retransmit
                };
                let stamp = task.stamp;
                if stamp <= applied {
                    // Run the batch back to back, streaming one result
                    // per item — consecutive items are neighbouring
                    // splits (bound locality), so their checkpoint and
                    // row-cache state stays hot between runs.
                    let mut dead = false;
                    for item in task.items {
                        let repeat = !sent.insert((item.r, item.attempt));
                        wrec.observe(
                            Metric::QueueWaitNs,
                            idle_since.elapsed().as_nanos() as u64,
                        );
                        if !run_task(
                            seq, scoring, &comm, &triangle, &mut rows, &mut incr, &dirty,
                            applied, stamp, item, repeat, &mut wrec,
                        ) {
                            dead = true;
                            break;
                        }
                        idle_since = Instant::now();
                    }
                    if dead {
                        return;
                    }
                } else {
                    // Replica lags the whole batch (one stamp per
                    // frame: all-run-or-all-defer). Defer each item as
                    // its own single-item frame so per-item
                    // retransmissions dedupe against it.
                    for item in task.items {
                        let single = TaskMsg::single(stamp, item);
                        if !already_deferred(&deferred, &single) {
                            deferred.push(single);
                        }
                    }
                }
            }
            tag::ACCEPTED => {
                let Ok(acc) = AcceptedMsg::decode(&msg.payload) else {
                    // A corrupted acceptance would leave the replica
                    // behind forever; ask for it again right away.
                    let _ = comm.send(0, tag::RESYNC, ResyncMsg { applied }.encode());
                    continue;
                };
                // Acceptances must be applied *in order*: if index k
                // was lost and k+1 arrives first, applying it and
                // claiming stamp k+2 would leave k's override pairs
                // silently missing — and every score computed under
                // that replica would be wrongly trusted as fresh.
                if acc.index > applied {
                    let _ = comm.send(0, tag::RESYNC, ResyncMsg { applied }.encode());
                    continue;
                }
                if acc.index < applied {
                    continue; // duplicate of an already-applied acceptance
                }
                for &(p, q) in &acc.pairs {
                    triangle.set(p, q);
                }
                if incr.is_some() {
                    dirty.record_accept(&acc.pairs);
                }
                applied += 1;
            }
            tag::DONE => {
                // Final (`fin`) snapshot, sent twice so a period-2 loss
                // pattern cannot swallow the worker's whole telemetry
                // tail. Failures are moot: we are exiting either way.
                let pool = incr.as_ref().map_or(0, |s| s.pool_reuses());
                wrec.add(Counter::PoolReuses, pool - pool_sent);
                tele_seq += 1;
                let frame = TelemetryMsg {
                    seq: tele_seq,
                    fin: true,
                    snap: wrec.telemetry_snapshot(),
                };
                let payload = frame.encode();
                let _ = comm.send(0, tag::TELEMETRY, payload.clone());
                let _ = comm.send(0, tag::TELEMETRY, payload);
                return;
            }
            _ => {} // stray tag: ignore
        }
    }
}

/// Compute one task and send its result. Returns `false` when the
/// send proves an endpoint dead (ours or the master's), which is the
/// worker's cue to exit; injected drops stay invisible and are healed
/// by the master's retransmission.
#[allow(clippy::too_many_arguments)] // the worker loop threads its whole replica state
fn run_task<C: Comm>(
    seq: &Seq,
    scoring: &Scoring,
    comm: &C,
    triangle: &OverrideTriangle,
    rows: &mut HashMap<usize, Vec<Score>>,
    incr: &mut Option<IncrementalSweeper>,
    dirty: &DirtyLog,
    applied: usize,
    stamp: usize,
    task: TaskItem,
    repeat: bool,
    wrec: &mut FlightRecorder,
) -> bool {
    if !task.first {
        if let Some(row) = &task.row {
            rows.insert(task.r, row.clone());
        }
    }
    let sweep_t0 = Instant::now();
    // The incremental path serves realignments, and first passes while
    // the replica is still pristine. A first pass re-run under a newer
    // replica (a retransmitted attempt racing an acceptance) takes the
    // plain path: the sweeper's memo must only ever describe the
    // version-stamped state the dirty log can account for.
    let use_incr = incr.is_some() && (!task.first || applied == 0);
    let (score, shadow_rejections, cells, incr_tallies, first_row) = if use_incr {
        let sweeper = incr.as_mut().expect("checked incr.is_some()");
        if task.first {
            let res = sweeper.first_pass(seq, scoring, task.r, triangle, 0);
            let row = res.first_row.expect("first pass returns its row");
            rows.insert(task.r, row.clone());
            (res.score, 0, res.cells, [0; 4], Some(row))
        } else {
            let original = rows
                .get(&task.r)
                .expect("realignment without cached or attached row");
            let sweep = sweeper.realign(
                seq,
                scoring,
                task.r,
                triangle,
                original,
                dirty,
                applied as u64,
            );
            let tallies = [
                u64::from(sweep.hit()),
                u64::from(!sweep.hit()),
                sweep.rows_swept,
                sweep.rows_skipped,
            ];
            wrec.observe(Metric::ResumeRows, sweep.rows_swept);
            (
                sweep.result.score,
                sweep.result.shadow_rejections,
                sweep.result.cells,
                tallies,
                None,
            )
        }
    } else {
        let (prefix, suffix) = seq.split(task.r);
        let mask = SplitMask::new(triangle, task.r);
        let last = repro_align::sw_last_row(prefix, suffix, scoring, mask);
        if task.first {
            if triangle.is_empty() {
                rows.insert(task.r, last.row.clone());
                (last.best_in_row, 0, last.cells, [0; 4], Some(last.row))
            } else {
                // A first pass under a grown replica — possible when the
                // master prunes with seed bounds (accepts then precede
                // some first passes). The row every later realignment
                // diffs against must be the CLEAN bottom row, so sweep
                // unmasked for the row and shadow-score the masked
                // sweep against it.
                let clean = repro_align::sw_last_row(prefix, suffix, scoring, NoMask);
                let (score, _, shadows) =
                    repro_core::bottom::best_valid_entry_counted(&last.row, &clean.row);
                rows.insert(task.r, clean.row.clone());
                (
                    score,
                    shadows,
                    last.cells + clean.cells,
                    [0; 4],
                    Some(clean.row),
                )
            }
        } else {
            let original = rows
                .get(&task.r)
                .expect("realignment without cached or attached row");
            let (score, _, shadows) =
                repro_core::bottom::best_valid_entry_counted(&last.row, original);
            (score, shadows, last.cells, [0; 4], None)
        }
    };
    wrec.observe(Metric::SweepNs, sweep_t0.elapsed().as_nanos() as u64);
    // The shipped bound dominates any score computed at or past the
    // task's stamp (masking monotonicity); a violation would mean the
    // master's seed index is broken.
    debug_assert!(
        score <= task.bound,
        "split {}: score {} above shipped bound {}",
        task.r,
        score,
        task.bound
    );
    let res = ResultMsg {
        r: task.r,
        stamp,
        attempt: task.attempt,
        score,
        cells,
        shadow_rejections,
        incr: incr_tallies,
        first_row,
    };
    let payload = res.encode();
    // A repeat means the first copy was lost en route: send two copies
    // back to back so a period-2 loss pattern cannot swallow both.
    for _ in 0..if repeat { 2 } else { 1 } {
        if comm.send(0, tag::RESULT, payload.clone()).is_err() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use repro_core::find_top_alignments;

    const DL: Duration = Duration::from_secs(10);

    #[test]
    fn figure4_example_matches_sequential() {
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 3);
        for workers in [1, 2, 4] {
            let got = find_top_alignments_cluster(&seq, &scoring, 3, workers, DL).unwrap();
            assert_eq!(
                got.result.alignments, want.alignments,
                "{workers} workers disagree with sequential"
            );
            assert_eq!(got.ranks, workers + 1);
        }
    }

    #[test]
    fn agrees_on_varied_inputs() {
        let scoring = Scoring::dna_example();
        for text in [
            "ACGTTGCAACGTACGTTGCAGGTT",
            "AAAAAAAAAAAAAAA",
            "ACGGTACGGTAACGGTTTTTACGGT",
        ] {
            let seq = Seq::dna(text).unwrap();
            let want = find_top_alignments(&seq, &scoring, 5);
            for workers in [1, 3] {
                let got = find_top_alignments_cluster(&seq, &scoring, 5, workers, DL).unwrap();
                assert_eq!(
                    got.result.alignments, want.alignments,
                    "{workers} on {text}"
                );
            }
        }
    }

    #[test]
    fn protein_run() {
        let seq = Seq::protein("MGEKALVPYRLQHCMGEKALVPYRWWMGEKALVPYR").unwrap();
        let scoring = Scoring::protein_default();
        let want = find_top_alignments(&seq, &scoring, 4);
        let got = find_top_alignments_cluster(&seq, &scoring, 4, 2, DL).unwrap();
        assert_eq!(got.result.alignments, want.alignments);
    }

    #[test]
    fn checkpointed_matches_plain_and_skips_rows() {
        let motif = "ATGCATGCATGC";
        let text = format!("GGTTCCAA{motif}CCAAGGTT{motif}TGCATTGG");
        let seq = Seq::dna(&text).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 6);
        for budget in [Some(0), Some(1 << 20)] {
            for workers in [1, 2] {
                let got = find_top_alignments_cluster_checkpointed(
                    &seq, &scoring, 6, workers, DL, budget,
                )
                .unwrap();
                assert_eq!(
                    got.result.alignments, want.alignments,
                    "budget {budget:?}, {workers} workers"
                );
                let s = &got.result.stats;
                if budget == Some(0) {
                    assert_eq!(s.checkpoint_hits, 0, "budget 0 must always miss");
                    assert_eq!(s.realign_rows_skipped, 0);
                    assert!(s.checkpoint_misses > 0);
                } else {
                    assert!(
                        s.checkpoint_hits > 0,
                        "{workers} workers: expected memo/checkpoint hits"
                    );
                    assert!(s.realign_rows_skipped > 0);
                }
            }
        }
    }

    #[test]
    fn seeded_matches_unpruned_across_workers_and_budgets() {
        let scoring = Scoring::dna_example();
        for text in ["ATGCATGCATGC", "ACGGTACGGTAACGGTTTTTACGGT"] {
            let seq = Seq::dna(text).unwrap();
            let want = find_top_alignments(&seq, &scoring, 4);
            for workers in [1, 2] {
                for budget in [None, Some(1 << 20)] {
                    let got = find_top_alignments_cluster_seeded(
                        &seq,
                        &scoring,
                        4,
                        workers,
                        DL,
                        budget,
                        Some(SeedConfig::default()),
                        &mut NoopRecorder,
                    )
                    .unwrap();
                    assert_eq!(
                        got.result.alignments, want.alignments,
                        "seeded {workers} workers, budget {budget:?}, on {text}"
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_cluster_prunes_splits_on_low_repeat_input() {
        let motif = "ATGCATGCATGC";
        let text = format!("GGTTCCAACCGGTTAACCAGTGCA{motif}{motif}CAGTCCGGAATTCCGGTAACCGT");
        let seq = Seq::dna(&text).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 1);
        let got = find_top_alignments_cluster_seeded(
            &seq,
            &scoring,
            1,
            2,
            DL,
            None,
            Some(SeedConfig::default()),
            &mut NoopRecorder,
        )
        .unwrap();
        assert_eq!(got.result.alignments, want.alignments);
        let s = &got.result.stats;
        assert!(s.splits_pruned > 0, "flank splits must never be assigned");
        assert!((s.splits_pruned as usize) < seq.len() - 1);
        assert!(s.seed_index_build_ns > 0);
    }

    #[test]
    fn exhaustion_terminates() {
        let seq = Seq::dna("ACGT").unwrap();
        let scoring = Scoring::dna_example();
        let got = find_top_alignments_cluster(&seq, &scoring, 10, 2, DL).unwrap();
        assert!(got.result.alignments.len() < 10);
    }

    #[test]
    fn message_loss_is_healed_by_retransmission() {
        let seq = Seq::dna(&"ATGC".repeat(10)).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 5);
        // Drop every 5th message on every endpoint: the retry layer
        // must recover every lost task, result and acceptance, and the
        // alignments must still be exactly the sequential ones.
        let got = find_top_alignments_cluster_faulty(
            &seq,
            &scoring,
            5,
            2,
            Duration::from_secs(20),
            FaultPlan {
                drop_every: 5,
                ..FaultPlan::default()
            },
        )
        .expect("message loss must be recovered, not fatal");
        assert_eq!(got.result.alignments, want.alignments);
    }

    #[test]
    fn heavy_message_loss_completes_instead_of_stalling() {
        // The regression the recovery layer exists for: dropping every
        // 2nd message used to yield ClusterError::Stalled.
        let seq = Seq::dna(&"ATGC".repeat(6)).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 3);
        let got = find_top_alignments_cluster_faulty(
            &seq,
            &scoring,
            3,
            2,
            Duration::from_secs(30),
            FaultPlan {
                drop_every: 2,
                ..FaultPlan::default()
            },
        )
        .expect("drop_every=2 must complete, possibly via local fallback");
        assert_eq!(got.result.alignments, want.alignments);
    }

    #[test]
    fn duplicated_messages_are_harmless() {
        let seq = Seq::dna(&"ATGC".repeat(8)).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 4);
        let got = find_top_alignments_cluster_faulty(
            &seq,
            &scoring,
            4,
            2,
            DL,
            FaultPlan {
                dup_every: 7,
                ..FaultPlan::default()
            },
        )
        .expect("duplicates must be absorbed by attempt dedup");
        assert_eq!(got.result.alignments, want.alignments);
    }

    #[test]
    fn corrupted_payloads_are_dropped_and_recovered() {
        let seq = Seq::dna(&"ATGC".repeat(8)).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 4);
        let got = find_top_alignments_cluster_faulty(
            &seq,
            &scoring,
            4,
            2,
            Duration::from_secs(20),
            FaultPlan {
                corrupt_every: 9,
                ..FaultPlan::default()
            },
        )
        .expect("corruption is detected by framing and healed by retry");
        assert_eq!(got.result.alignments, want.alignments);
    }

    #[test]
    fn crashed_worker_is_reassigned_around() {
        let seq = Seq::dna(&"ATGC".repeat(8)).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 4);
        // Rank 2 (a worker) dies after its first few sends; the master
        // must reassign its work to the survivor and still finish.
        let got = find_top_alignments_cluster_faulty(
            &seq,
            &scoring,
            4,
            2,
            Duration::from_secs(20),
            FaultPlan {
                crash_rank: Some(2),
                crash_after_sends: 3,
                ..FaultPlan::default()
            },
        )
        .expect("a crashed worker must not sink the run");
        assert_eq!(got.result.alignments, want.alignments);
    }

    #[test]
    fn all_workers_crashing_degrades_to_local_fallback() {
        let seq = Seq::dna(&"ATGC".repeat(6)).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 3);
        // The only worker dies almost immediately.
        let got = find_top_alignments_cluster_faulty(
            &seq,
            &scoring,
            3,
            1,
            Duration::from_secs(20),
            FaultPlan {
                crash_rank: Some(1),
                crash_after_sends: 1,
                ..FaultPlan::default()
            },
        )
        .expect("losing every worker must degrade to local computation");
        assert_eq!(got.result.alignments, want.alignments);
    }

    #[test]
    fn all_workers_dying_at_once_mid_run_never_hangs() {
        // Recv-timeout audit (satellite): the whole pool dying at the
        // same instant — between a broadcast and its results — must
        // terminate promptly via the local fallback with the exact
        // sequential alignments, never hang on a collect that can no
        // longer complete.
        let seq = Seq::dna(&"ATGC".repeat(8)).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 4);
        let start = Instant::now();
        let got = find_top_alignments_cluster_faulty(
            &seq,
            &scoring,
            4,
            3,
            Duration::from_secs(60),
            FaultPlan {
                crash_workers_after: 4,
                ..FaultPlan::default()
            },
        )
        .expect("whole-pool death must degrade to local computation");
        assert_eq!(got.result.alignments, want.alignments);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "must not idle out the 60s budget"
        );
    }

    #[test]
    fn crashed_master_is_a_typed_error() {
        let seq = Seq::dna(&"ATGC".repeat(6)).unwrap();
        let scoring = Scoring::dna_example();
        let out = find_top_alignments_cluster_faulty(
            &seq,
            &scoring,
            3,
            2,
            Duration::from_secs(5),
            FaultPlan {
                crash_rank: Some(0),
                crash_after_sends: 2,
                ..FaultPlan::default()
            },
        );
        assert_eq!(out.unwrap_err(), ClusterError::MasterDead);
    }

    #[test]
    fn recorded_chaos_run_produces_a_replayable_event_log() {
        use repro_obs::{Counter, Event, FlightRecorder, Phase};
        let seq = Seq::dna(&"ATGC".repeat(8)).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 4);
        let mut rec = FlightRecorder::with_events(10_000);
        // Crash one of two workers mid-run: the event log must show the
        // death and the reassignments that healed it.
        let got = find_top_alignments_cluster_faulty_recorded(
            &seq,
            &scoring,
            4,
            2,
            Duration::from_secs(20),
            FaultPlan {
                crash_rank: Some(2),
                crash_after_sends: 3,
                ..FaultPlan::default()
            },
            &mut rec,
        )
        .expect("a crashed worker must not sink the recorded run");
        assert_eq!(got.result.alignments, want.alignments);

        // The recovery phase wraps the whole run.
        assert_eq!(rec.phase_entries(Phase::Recovery), 1);
        assert!(rec.phase_secs(Phase::Recovery) > 0.0);

        // The transport tallies surface both in the recorder and in the
        // result's stats, and they agree.
        assert_eq!(
            rec.counter(Counter::ClusterReassignments),
            got.result.stats.cluster_reassignments
        );
        assert_eq!(
            rec.counter(Counter::ClusterRetries),
            got.result.stats.cluster_retries
        );
        assert!(rec.counter(Counter::ClusterWorkerDeaths) >= 1);

        // The structured event stream tells the story: assignments,
        // results, the death, and a terminal Done with the right count.
        let events = rec.events();
        assert!(events
            .iter()
            .any(|e| matches!(e.event, Event::Assign { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.event, Event::Result { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.event, Event::WorkerDead { worker: 2 })));
        assert!(events
            .iter()
            .any(|e| matches!(e.event, Event::Done { tops } if tops == want.alignments.len())));
        // Timestamps are monotone, so the JSONL log replays in order.
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        // And every record serialises to a JSONL line.
        for e in events {
            let line = e.to_jsonl();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn telemetry_ships_worker_histograms_and_pool_reuses_home() {
        use repro_obs::{Event, FlightRecorder, Metric};
        let motif = "ATGCATGCATGC";
        let text = format!("GGTTCCAA{motif}CCAAGGTT{motif}TGCATTGG");
        let seq = Seq::dna(&text).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 6);
        let mut rec = FlightRecorder::with_events(10_000);
        let got = find_top_alignments_cluster_checkpointed_recorded(
            &seq,
            &scoring,
            6,
            2,
            DL,
            Some(1 << 20),
            &mut rec,
        )
        .unwrap();
        assert_eq!(got.result.alignments, want.alignments);
        // The workers' scratch-pool tallies come home: before the
        // telemetry channel existed they were silently lost on every
        // cluster transport and reported as 0.
        assert!(
            got.result.stats.pool_reuses > 0,
            "worker pool reuses must survive the wire"
        );
        // Master-side round trips and worker-side sweep/queue samples
        // all land in the master's merged histograms.
        for m in [Metric::TaskRoundTripNs, Metric::SweepNs, Metric::QueueWaitNs] {
            let h = rec.hist(m);
            assert!(h.count() > 0, "{} must have samples", m.name());
            assert!(h.p99() >= h.p50(), "{} quantiles inverted", m.name());
        }
        // Telemetry folds appear in the event log as a per-worker
        // timeline with strictly increasing sequence numbers.
        let mut last_seq: HashMap<usize, u64> = HashMap::new();
        let mut folds = 0;
        for e in rec.events() {
            if let Event::Telemetry { worker, seq, .. } = e.event {
                let prev = last_seq.entry(worker).or_insert(0);
                assert!(seq > *prev, "worker {worker} telemetry folded out of order");
                *prev = seq;
                folds += 1;
            }
        }
        assert!(folds > 0, "telemetry events must appear in the log");
    }

    #[test]
    fn delayed_messages_do_not_change_the_answer() {
        let seq = Seq::dna(&"ATGC".repeat(8)).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 4);
        let got = find_top_alignments_cluster_faulty(
            &seq,
            &scoring,
            4,
            3,
            Duration::from_secs(20),
            FaultPlan {
                delay_every: 4,
                delay: Duration::from_millis(70),
                ..FaultPlan::default()
            },
        )
        .expect("delays reorder traffic but never corrupt the schedule");
        assert_eq!(got.result.alignments, want.alignments);
    }
}
