//! The master's scheduling state machine, independent of any transport.
//!
//! Both backends (real threads and the virtual-time simulator) feed
//! worker events in and execute the returned actions. The machine
//! implements the same acceptance rule as every other engine — accept
//! exactly when the globally best upper bound belongs to a fresh task —
//! so the distributed engine's alignments are identical to the
//! sequential ones, independent of worker count or message timing.

use crate::protocol::{AcceptedMsg, TaskMsg};
use repro_align::{Score, Scoring, Seq};
use repro_core::{accept_task_with_row, OverrideTriangle, Stats, TopAlignment};

/// What the transport must do next, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterAction {
    /// Send this task to this worker.
    Assign {
        /// Destination worker (transport-level id, as registered via
        /// [`MasterState::worker_idle`]).
        worker: usize,
        /// The assignment.
        task: TaskMsg,
    },
    /// Broadcast an acceptance to every worker.
    Broadcast(AcceptedMsg),
    /// Broadcast shutdown; the search is complete.
    Done,
}

#[derive(Debug, Clone, Copy)]
struct TaskState {
    score: Score,
    aligned_with: usize,
    assigned: bool,
}

const NEVER: usize = usize::MAX;

/// The master's complete state.
pub struct MasterState<'a> {
    seq: &'a Seq,
    scoring: &'a Scoring,
    count: usize,
    state: Vec<TaskState>, // index r − 1
    rows: Vec<Option<Vec<Score>>>,
    /// Which workers hold a cached copy of which rows.
    worker_has_row: std::collections::HashMap<usize, Vec<bool>>,
    triangle: OverrideTriangle,
    tops: Vec<TopAlignment>,
    stats: Stats,
    idle: Vec<usize>,
    in_flight: usize,
    done: bool,
}

impl<'a> MasterState<'a> {
    /// A master searching for `count` top alignments of `seq`.
    pub fn new(seq: &'a Seq, scoring: &'a Scoring, count: usize) -> Self {
        let m = seq.len();
        let splits = m.saturating_sub(1);
        MasterState {
            seq,
            scoring,
            count,
            state: vec![
                TaskState {
                    score: Score::MAX,
                    aligned_with: NEVER,
                    assigned: false,
                };
                splits
            ],
            rows: vec![None; splits],
            worker_has_row: std::collections::HashMap::new(),
            triangle: OverrideTriangle::new(m),
            tops: Vec::new(),
            stats: Stats::new(),
            idle: Vec::new(),
            in_flight: 0,
            done: false,
        }
    }

    /// `true` once [`MasterAction::Done`] has been emitted.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Top alignments accepted so far.
    pub fn alignments(&self) -> &[TopAlignment] {
        &self.tops
    }

    /// Work counters (live view).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Consume the machine, yielding the final result.
    pub fn into_result(self) -> repro_core::TopAlignments {
        repro_core::TopAlignments {
            alignments: self.tops,
            stats: self.stats,
            triangle: self.triangle,
        }
    }

    /// A worker announced itself idle (startup).
    pub fn worker_idle(&mut self, worker: usize) -> Vec<MasterAction> {
        self.idle.push(worker);
        self.worker_has_row
            .entry(worker)
            .or_insert_with(|| vec![false; self.state.len()]);
        self.pump()
    }

    /// A worker returned a task result.
    pub fn result(
        &mut self,
        worker: usize,
        r: usize,
        stamp: usize,
        score: Score,
        cells: u64,
        first_row: Option<Vec<Score>>,
    ) -> Vec<MasterAction> {
        if !self.state[r - 1].assigned {
            // Duplicate delivery (fault injection): the first copy already
            // settled this assignment; the sender is already idle.
            return Vec::new();
        }
        self.stats.record_alignment(cells, stamp);
        if let Some(row) = first_row {
            if self.rows[r - 1].is_none() {
                self.rows[r - 1] = Some(row);
            }
            if let Some(flags) = self.worker_has_row.get_mut(&worker) {
                flags[r - 1] = true; // the computing worker caches its row
            }
        }
        let t = &mut self.state[r - 1];
        t.score = score;
        t.aligned_with = stamp;
        t.assigned = false;
        self.in_flight -= 1;
        self.idle.push(worker);
        self.pump()
    }

    /// Advance: accept while possible, then hand work to idle workers.
    fn pump(&mut self) -> Vec<MasterAction> {
        let mut actions = Vec::new();
        if self.done {
            return actions;
        }
        // Accept as long as the global argmax is fresh (acceptance can
        // make the next argmax fresh too, when a prior realignment
        // already ran against the triangle the acceptance produced —
        // impossible by monotonicity, but the loop shape matches the
        // sequential engine's).
        while self.tops.len() < self.count {
            let Some((best_score, best_i)) = self.argmax() else {
                break;
            };
            if best_score <= 0 {
                break;
            }
            let t = self.state[best_i];
            if t.assigned || t.aligned_with != self.tops.len() {
                break;
            }
            let r = best_i + 1;
            let index = self.tops.len();
            let original = self.rows[r - 1]
                .as_deref()
                .expect("accepted split must have a stored row");
            let (top, cells) = accept_task_with_row(
                self.seq,
                self.scoring,
                r,
                best_score,
                &mut self.triangle,
                original,
                index,
            );
            self.stats.record_traceback(cells);
            actions.push(MasterAction::Broadcast(AcceptedMsg {
                index,
                pairs: top.pairs.clone(),
            }));
            self.tops.push(top);
        }

        // Hand the best stale unassigned tasks to idle workers.
        while let Some(&worker) = self.idle.last() {
            let Some((_, i)) = self.best_stale_unassigned() else {
                break;
            };
            self.idle.pop();
            let r = i + 1;
            self.state[i].assigned = true;
            self.in_flight += 1;
            let stamp = self.tops.len();
            let first = self.rows[i].is_none();
            let flags = self
                .worker_has_row
                .get_mut(&worker)
                .expect("worker registered at idle time");
            let row = if first || flags[i] {
                None // first pass (no row yet), or worker has it cached
            } else {
                flags[i] = true;
                Some(self.rows[i].clone().expect("row checked above"))
            };
            actions.push(MasterAction::Assign {
                worker,
                task: TaskMsg {
                    r,
                    stamp,
                    first,
                    row,
                },
            });
        }

        // Finished? The search ends when the target is reached or no
        // positive alignment remains, and — for a tidy deterministic
        // shutdown — nothing is still in flight.
        let exhausted = self.argmax().is_none_or(|(s, _)| s <= 0);
        if (self.tops.len() >= self.count || exhausted) && self.in_flight == 0 {
            self.done = true;
            actions.push(MasterAction::Done);
        }
        actions
    }

    fn argmax(&self) -> Option<(Score, usize)> {
        let mut best: Option<(Score, usize)> = None;
        for (i, t) in self.state.iter().enumerate() {
            if best.is_none_or(|(bs, _)| t.score > bs) {
                best = Some((t.score, i));
            }
        }
        best
    }

    fn best_stale_unassigned(&self) -> Option<(Score, usize)> {
        if self.tops.len() >= self.count {
            return None; // enough tops: stop issuing work
        }
        let tops = self.tops.len();
        let mut best: Option<(Score, usize)> = None;
        for (i, t) in self.state.iter().enumerate() {
            if !t.assigned && t.aligned_with != tops && t.score > 0
                && best.is_none_or(|(bs, _)| t.score > bs) {
                    best = Some((t.score, i));
                }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::tag;
    use repro_core::{find_top_alignments, SplitMask};
    use repro_xmpi::wire ::Encoder;

    /// Drive the state machine synchronously with a perfect in-process
    /// "worker" that computes results immediately — a transport-free
    /// correctness test of the scheduling logic.
    fn drive(seq: &Seq, scoring: &Scoring, count: usize, workers: usize) -> Vec<TopAlignment> {
        let _ = Encoder::new(); // keep the wire import exercised
        let mut master = MasterState::new(seq, scoring, count);
        let mut worker_triangles: Vec<OverrideTriangle> =
            (0..workers).map(|_| OverrideTriangle::new(seq.len())).collect();
        let mut worker_caches: Vec<std::collections::HashMap<usize, Vec<Score>>> =
            vec![std::collections::HashMap::new(); workers];
        let mut pending: std::collections::VecDeque<(usize, TaskMsg)> =
            std::collections::VecDeque::new();

        let mut actions: Vec<MasterAction> = Vec::new();
        for w in 0..workers {
            actions.extend(master.worker_idle(w));
        }
        loop {
            for a in actions.drain(..) {
                match a {
                    MasterAction::Assign { worker, task } => pending.push_back((worker, task)),
                    MasterAction::Broadcast(acc) => {
                        for t in &mut worker_triangles {
                            for &(p, q) in &acc.pairs {
                                t.set(p, q);
                            }
                        }
                    }
                    MasterAction::Done => return master.into_result().alignments,
                }
            }
            let Some((w, task)) = pending.pop_front() else {
                panic!("master stalled without Done");
            };
            // Worker computes with ITS replica (which here is in lockstep
            // with the master; async transports exercise the lag).
            let (prefix, suffix) = seq.split(task.r);
            let mask = SplitMask::new(&worker_triangles[w], task.r);
            let last = repro_align::sw_last_row(prefix, suffix, scoring, mask);
            let (score, first_row) = if task.first {
                worker_caches[w].insert(task.r, last.row.clone());
                (last.best_in_row, Some(last.row))
            } else {
                if let Some(row) = &task.row {
                    worker_caches[w].insert(task.r, row.clone());
                }
                let orig = worker_caches[w]
                    .get(&task.r)
                    .expect("realignment without a cached or attached row");
                (repro_core::bottom::best_valid_entry(&last.row, orig).0, None)
            };
            actions = master.result(w, task.r, task.stamp, score, last.cells, first_row);
            let _ = tag::IDLE;
        }
    }

    #[test]
    fn matches_sequential_for_various_worker_counts() {
        let scoring = Scoring::dna_example();
        for text in ["ATGCATGCATGC", "ACGGTACGGTAACGGTTTTTACGGT", "AAAAAAAA"] {
            let seq = Seq::dna(text).unwrap();
            let want = find_top_alignments(&seq, &scoring, 4).alignments;
            for workers in [1, 2, 5] {
                let got = drive(&seq, &scoring, 4, workers);
                assert_eq!(got, want, "{workers} workers on {text}");
            }
        }
    }

    #[test]
    fn terminates_on_exhausted_sequences() {
        let scoring = Scoring::dna_example();
        let seq = Seq::dna("ACGT").unwrap();
        let got = drive(&seq, &scoring, 10, 3);
        assert!(got.len() < 10);
    }
}
