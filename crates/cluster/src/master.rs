//! The master's scheduling state machine, independent of any transport.
//!
//! Both backends (real threads and the virtual-time simulator) feed
//! worker events in and execute the returned actions. The machine
//! implements the same acceptance rule as every other engine — accept
//! exactly when the globally best upper bound belongs to a fresh task —
//! so the distributed engine's alignments are identical to the
//! sequential ones, independent of worker count or message timing.
//!
//! Fault tolerance lives here too, transport-independently:
//!
//! * every assignment carries an **attempt number**; a result is only
//!   allowed to settle the assignment whose attempt it echoes, so
//!   duplicated, delayed or reassigned-and-then-delivered results are
//!   recognised as stale and discarded;
//! * capacity is tracked as **(worker, slot) tokens** — a slot is one
//!   CPU's worth of capacity (the hybrid engine runs several per rank).
//!   A token is consumed by an assignment and returned exactly when
//!   that assignment settles, so duplicated IDLE announcements and
//!   stale results can never inflate or leak capacity;
//! * [`MasterState::worker_dead`] withdraws a lost worker: its
//!   in-flight tasks return to the pool for reassignment and any later
//!   message from it (a zombie) is ignored;
//! * [`MasterState::finish_locally`] is the last line of degradation:
//!   with every worker gone, the master itself computes the remaining
//!   tasks against its own (authoritative) triangle, which completes
//!   the search with the exact sequential result instead of stalling.

use crate::protocol::{AcceptedMsg, ResultMsg, TaskItem, TaskMsg};
use repro_align::{sw_last_row, NoMask, Score, Scoring, Seq};
use repro_core::seed::{SeedConfig, SplitBounds};
use repro_core::{accept_task_with_row, OverrideTriangle, SplitMask, Stats, TopAlignment};
use std::collections::{HashMap, HashSet};

/// The worker id the master uses for itself when it falls back to
/// local computation ([`MasterState::finish_locally`]). Transports must
/// never register a real worker under this id.
pub const LOCAL_WORKER: usize = usize::MAX;

/// Most assignments a single [`TaskMsg`] batch may carry. Batching
/// amortises a round trip over several tasks; capping it bounds the
/// speculation wasted when an acceptance lands mid-batch and keeps a
/// dead worker's reassignment burst small.
pub const MAX_BATCH: usize = 4;

/// What the transport must do next, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterAction {
    /// Send this task to this worker.
    Assign {
        /// Destination worker (transport-level id, as registered via
        /// [`MasterState::worker_idle`]).
        worker: usize,
        /// The assignment.
        task: TaskMsg,
    },
    /// Broadcast an acceptance to every worker.
    Broadcast(AcceptedMsg),
    /// Broadcast shutdown; the search is complete.
    Done,
}

#[derive(Debug, Clone, Copy)]
struct Assignment {
    worker: usize,
    /// The capacity slot this assignment consumed; returned on settle.
    slot: usize,
    attempt: u64,
}

#[derive(Debug, Clone, Copy)]
struct TaskState {
    score: Score,
    aligned_with: usize,
    assigned: Option<Assignment>,
    /// Attempts issued so far for this split (monotone).
    attempts: u64,
}

const NEVER: usize = usize::MAX;

/// The master's complete state.
pub struct MasterState<'a> {
    seq: &'a Seq,
    scoring: &'a Scoring,
    count: usize,
    state: Vec<TaskState>, // index r − 1
    rows: Vec<Option<Vec<Score>>>,
    /// Which workers hold a cached copy of which rows.
    worker_has_row: HashMap<usize, Vec<bool>>,
    /// Workers declared dead; all their later traffic is ignored.
    dead: HashSet<usize>,
    triangle: OverrideTriangle,
    tops: Vec<TopAlignment>,
    stats: Stats,
    /// Free capacity tokens: (worker, slot).
    idle: Vec<(usize, usize)>,
    in_flight: usize,
    done: bool,
    /// Seed bounds (pruning on): the master owns the only seed index in
    /// the cluster; workers receive the per-task bound inside
    /// [`TaskMsg`] and never build one themselves.
    bounds: Option<SplitBounds>,
    /// Splits whose first pass has settled — the complement of the
    /// splits pruning kept seedless forever.
    first_passes: usize,
}

impl<'a> MasterState<'a> {
    /// A master searching for `count` top alignments of `seq`.
    pub fn new(seq: &'a Seq, scoring: &'a Scoring, count: usize) -> Self {
        Self::new_seeded(seq, scoring, count, None)
    }

    /// [`MasterState::new`] with seeded split pruning: every split
    /// starts at its seed bound instead of `Score::MAX`, so splits
    /// whose bound never reaches the acceptance frontier are never
    /// assigned to any worker at all.
    pub fn new_seeded(
        seq: &'a Seq,
        scoring: &'a Scoring,
        count: usize,
        seed: Option<SeedConfig>,
    ) -> Self {
        let m = seq.len();
        let splits = m.saturating_sub(1);
        let bounds = seed.map(|sc| SplitBounds::build(seq.codes(), scoring, sc));
        let mut stats = Stats::new();
        if let Some(b) = &bounds {
            stats.seed_index_build_ns = b.build_ns();
        }
        let state = (0..splits)
            .map(|i| TaskState {
                score: bounds.as_ref().map_or(Score::MAX, |b| b.bound(i + 1)),
                aligned_with: NEVER,
                assigned: None,
                attempts: 0,
            })
            .collect();
        MasterState {
            seq,
            scoring,
            count,
            state,
            rows: vec![None; splits],
            worker_has_row: HashMap::new(),
            dead: HashSet::new(),
            triangle: OverrideTriangle::new(m),
            tops: Vec::new(),
            stats,
            idle: Vec::new(),
            in_flight: 0,
            done: false,
            bounds,
            first_passes: 0,
        }
    }

    /// `true` once [`MasterAction::Done`] has been emitted.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Top alignments accepted so far.
    pub fn alignments(&self) -> &[TopAlignment] {
        &self.tops
    }

    /// Work counters (live view).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// A live progress snapshot in the same units the shared-memory
    /// engines report: first passes done vs total splits, splits still
    /// never assigned (pruning keeps them seedless forever, so this
    /// converges from above to the final pruned count), and realignments
    /// the workers' checkpoint layers avoided.
    pub fn progress(&self) -> repro_obs::Progress {
        let total = self.state.len() as u64;
        let done = self.first_passes as u64;
        repro_obs::Progress {
            splits_done: done,
            splits_total: total,
            splits_pruned: total - done,
            realignments_avoided: self.stats.checkpoint_hits,
            tops_found: self.tops.len() as u64,
            tops_requested: self.count as u64,
        }
    }

    /// Registered workers not declared dead.
    pub fn live_workers(&self) -> usize {
        self.worker_has_row.len()
    }

    /// `true` iff `worker` has been declared dead.
    pub fn is_dead(&self, worker: usize) -> bool {
        self.dead.contains(&worker)
    }

    /// Consume the machine, yielding the final result.
    pub fn into_result(mut self) -> repro_core::TopAlignments {
        if let Some(b) = &self.bounds {
            self.stats.splits_pruned = self.state.len().saturating_sub(self.first_passes) as u64;
            self.stats.bound_recomputes = b.recomputes();
        }
        repro_core::TopAlignments {
            alignments: self.tops,
            stats: self.stats,
            triangle: self.triangle,
        }
    }

    /// The acceptances with index ≥ `have`, for re-broadcast to a
    /// worker whose replica missed one (RESYNC).
    pub fn accepted_since(&self, have: usize) -> Vec<AcceptedMsg> {
        self.tops
            .iter()
            .enumerate()
            .skip(have)
            .map(|(index, top)| AcceptedMsg {
                index,
                pairs: top.pairs.clone(),
            })
            .collect()
    }

    /// `true` iff capacity token (`worker`, `slot`) is consumed by an
    /// in-flight assignment.
    fn slot_busy(&self, worker: usize, slot: usize) -> bool {
        self.state.iter().any(|t| {
            t.assigned
                .is_some_and(|a| a.worker == worker && a.slot == slot)
        })
    }

    /// Return capacity token (`worker`, `slot`) to the pool, unless it
    /// is already there or still consumed by an assignment. This makes
    /// IDLE re-announcements (workers beacon while free) idempotent.
    fn credit_idle(&mut self, worker: usize, slot: usize) {
        if !self.idle.contains(&(worker, slot)) && !self.slot_busy(worker, slot) {
            self.idle.push((worker, slot));
        }
    }

    /// A worker announced capacity slot `slot` as idle (sent at startup
    /// and re-beaconed while the slot stays free; safe to repeat).
    pub fn worker_idle(&mut self, worker: usize, slot: usize) -> Vec<MasterAction> {
        if self.dead.contains(&worker) {
            return Vec::new(); // zombie: already written off
        }
        self.worker_has_row
            .entry(worker)
            .or_insert_with(|| vec![false; self.state.len()]);
        self.credit_idle(worker, slot);
        self.pump()
    }

    /// A worker returned a task result.
    pub fn result(&mut self, worker: usize, res: ResultMsg) -> Vec<MasterAction> {
        if self.dead.contains(&worker) || res.r == 0 || res.r > self.state.len() {
            return Vec::new(); // zombie, or a frame that decoded to nonsense
        }
        let current = self.state[res.r - 1].assigned;
        let Some(a) = current.filter(|a| a.worker == worker && a.attempt == res.attempt) else {
            // Stale: a duplicate delivery, or an attempt that was
            // reassigned before this copy arrived. Discard the content
            // (a late first-pass recompute may have run under a newer
            // replica, so even its row cannot be trusted as version-0)
            // and credit nothing — the token for this slot was already
            // returned when the first copy settled.
            return Vec::new();
        };
        self.stats.record_alignment(res.cells, res.stamp);
        self.stats.shadow_rejections += res.shadow_rejections;
        self.stats.checkpoint_hits += res.incr[0];
        self.stats.checkpoint_misses += res.incr[1];
        self.stats.realign_rows_swept += res.incr[2];
        self.stats.realign_rows_skipped += res.incr[3];
        if let Some(row) = res.first_row {
            if self.rows[res.r - 1].is_none() {
                // Exactly one result per split settles with its row
                // slot still empty (one assignment per split at a
                // time), so this counts each first pass once.
                self.first_passes += 1;
                self.rows[res.r - 1] = Some(row);
            }
            if let Some(flags) = self.worker_has_row.get_mut(&worker) {
                flags[res.r - 1] = true; // the computing worker caches its row
            }
        }
        let t = &mut self.state[res.r - 1];
        t.score = res.score;
        t.aligned_with = res.stamp;
        t.assigned = None;
        self.in_flight -= 1;
        self.credit_idle(worker, a.slot);
        self.pump()
    }

    /// Withdraw `worker` without rescheduling (shared by
    /// [`MasterState::worker_dead`] and [`MasterState::finish_locally`]).
    fn mark_dead(&mut self, worker: usize) {
        if self.dead.contains(&worker) {
            return;
        }
        self.dead.insert(worker);
        self.worker_has_row.remove(&worker);
        self.idle.retain(|&(w, _)| w != worker);
        for t in &mut self.state {
            if t.assigned.is_some_and(|a| a.worker == worker) {
                t.assigned = None;
                self.in_flight -= 1;
            }
        }
    }

    /// Declare `worker` dead: drop its idle slots and row-cache flags,
    /// return its in-flight tasks to the pool, and reassign them to
    /// whoever is idle. Any message it sends later is ignored.
    pub fn worker_dead(&mut self, worker: usize) -> Vec<MasterAction> {
        self.mark_dead(worker);
        self.pump()
    }

    /// Graceful degradation: every remote worker is written off and the
    /// master finishes the remaining search itself, against its own
    /// triangle (which is authoritative, so every local task runs at
    /// exactly the stamped version — the acceptance rule is unchanged).
    /// Returns the leftover broadcast/done actions for best-effort
    /// forwarding to any half-dead ranks.
    pub fn finish_locally(&mut self) -> Vec<MasterAction> {
        let workers: Vec<usize> = self
            .worker_has_row
            .keys()
            .copied()
            .filter(|&w| w != LOCAL_WORKER)
            .collect();
        for w in workers {
            self.mark_dead(w);
        }
        let mut out = Vec::new();
        let mut queue = self.worker_idle(LOCAL_WORKER, 0);
        loop {
            let local = queue.iter().position(
                |a| matches!(a, MasterAction::Assign { worker, .. } if *worker == LOCAL_WORKER),
            );
            let Some(pos) = local else {
                break;
            };
            let MasterAction::Assign { task, .. } = queue.remove(pos) else {
                unreachable!("position matched an Assign");
            };
            out.append(&mut queue);
            debug_assert_eq!(task.items.len(), 1, "local assignments are single-item");
            let item = &task.items[0];
            let (score, cells, shadow_rejections, first_row) = self.compute_local(task.stamp, item);
            queue = self.result(
                LOCAL_WORKER,
                ResultMsg {
                    r: item.r,
                    stamp: task.stamp,
                    attempt: item.attempt,
                    score,
                    cells,
                    shadow_rejections,
                    incr: [0; 4],
                    first_row,
                },
            );
        }
        out.extend(queue);
        out
    }

    /// Run one task on the master itself. Identical to a worker's
    /// compute, but against the master's own triangle — always at
    /// version `tops.len()`, which equals every locally issued stamp.
    fn compute_local(&self, stamp: usize, task: &TaskItem) -> (Score, u64, u64, Option<Vec<Score>>) {
        debug_assert_eq!(stamp, self.tops.len());
        let (prefix, suffix) = self.seq.split(task.r);
        let mask = SplitMask::new(&self.triangle, task.r);
        let last = sw_last_row(prefix, suffix, self.scoring, mask);
        if task.first {
            if self.triangle.is_empty() {
                (last.best_in_row, last.cells, 0, Some(last.row))
            } else {
                // A first pass after accepts (possible only under seed
                // pruning): the stored row must be the CLEAN bottom
                // row — later realignments diff against it — so sweep
                // unmasked for the row and score the masked sweep
                // against it, shadow-filtered like any realignment.
                let clean = sw_last_row(prefix, suffix, self.scoring, NoMask);
                let (score, _, shadows) =
                    repro_core::bottom::best_valid_entry_counted(&last.row, &clean.row);
                (score, last.cells + clean.cells, shadows, Some(clean.row))
            }
        } else {
            let original = self.rows[task.r - 1]
                .as_deref()
                .expect("realignment of a split with no stored row");
            let (score, _, shadows) =
                repro_core::bottom::best_valid_entry_counted(&last.row, original);
            (score, last.cells, shadows, None)
        }
    }

    /// Advance: accept while possible, then hand work to idle workers.
    fn pump(&mut self) -> Vec<MasterAction> {
        let mut actions = Vec::new();
        if self.done {
            return actions;
        }
        // Accept as long as the global argmax is fresh (acceptance can
        // make the next argmax fresh too, when a prior realignment
        // already ran against the triangle the acceptance produced —
        // impossible by monotonicity, but the loop shape matches the
        // sequential engine's).
        while self.tops.len() < self.count {
            let Some((best_score, best_i)) = self.argmax() else {
                break;
            };
            if best_score <= 0 {
                break;
            }
            let t = self.state[best_i];
            if t.assigned.is_some() || t.aligned_with != self.tops.len() {
                break;
            }
            let r = best_i + 1;
            let index = self.tops.len();
            let original = self.rows[r - 1]
                .as_deref()
                .expect("accepted split must have a stored row");
            let (top, cells) = accept_task_with_row(
                self.seq,
                self.scoring,
                r,
                best_score,
                &mut self.triangle,
                original,
                index,
            );
            self.stats.record_traceback(cells);
            self.stats.fresh_pops += 1;
            // Seeded: tighten the bounds of every still-seedless split
            // under the grown triangle, so splits whose (now masked)
            // bound falls off the frontier are never assigned. Skipped
            // once every split has had its first pass — from there the
            // bounds can prune nothing.
            if self.first_passes < self.state.len() {
                if let (Some(bounds), Some(&(p, _))) = (self.bounds.as_mut(), top.pairs.first()) {
                    bounds.recompute(self.seq.codes(), self.scoring, &self.triangle, p);
                    for (i, t) in self.state.iter_mut().enumerate() {
                        if t.aligned_with == NEVER && t.assigned.is_none() {
                            t.score = bounds.bound(i + 1);
                        }
                    }
                }
            }
            actions.push(MasterAction::Broadcast(AcceptedMsg {
                index,
                pairs: top.pairs.clone(),
            }));
            self.tops.push(top);
        }

        // Hand the best stale unassigned tasks to idle capacity, up to
        // MAX_BATCH per slot token. The batch size adapts to the
        // supply/demand ratio so a thin backlog still spreads across
        // every idle slot instead of piling onto the first one; each
        // batch is sorted by split index so consecutive items land in
        // neighbouring checkpoint and row-cache state on the worker
        // (bound locality).
        while let Some(&(worker, slot)) = self.idle.last() {
            let tops = self.tops.len();
            let avail = if tops >= self.count {
                0
            } else {
                self.state
                    .iter()
                    .filter(|t| t.assigned.is_none() && t.aligned_with != tops && t.score > 0)
                    .count()
            };
            if avail == 0 {
                break;
            }
            let k = if worker == LOCAL_WORKER {
                // The local fallback computes at the live stamp, one
                // task at a time — a batch would go stale mid-loop on
                // the first acceptance.
                1
            } else {
                (avail / self.idle.len()).clamp(1, MAX_BATCH)
            };
            self.idle.pop();
            let stamp = tops;
            let mut items = Vec::with_capacity(k);
            for _ in 0..k {
                let Some((_, i)) = self.best_stale_unassigned() else {
                    break;
                };
                let attempt = self.state[i].attempts + 1;
                self.state[i].attempts = attempt;
                self.state[i].assigned = Some(Assignment {
                    worker,
                    slot,
                    attempt,
                });
                self.in_flight += 1;
                self.stats.stale_pops += 1;
                let first = self.rows[i].is_none();
                let flags = self
                    .worker_has_row
                    .get_mut(&worker)
                    .expect("worker registered at idle time");
                let row = if first || flags[i] {
                    None // first pass (no row yet), or worker has it cached
                } else {
                    flags[i] = true;
                    Some(self.rows[i].clone().expect("row checked above"))
                };
                items.push(TaskItem {
                    r: i + 1,
                    attempt,
                    first,
                    // The current upper bound (seed bound for a first
                    // pass, stale score otherwise) rides along so the
                    // worker can sanity-check without a seed index.
                    bound: self.state[i].score,
                    row,
                });
            }
            items.sort_by_key(|it| it.r);
            actions.push(MasterAction::Assign {
                worker,
                task: TaskMsg { stamp, items },
            });
        }

        // Finished? The search ends when the target is reached or no
        // positive alignment remains, and — for a tidy deterministic
        // shutdown — nothing is still in flight.
        let exhausted = self.argmax().is_none_or(|(s, _)| s <= 0);
        if (self.tops.len() >= self.count || exhausted) && self.in_flight == 0 {
            self.done = true;
            actions.push(MasterAction::Done);
        }
        actions
    }

    fn argmax(&self) -> Option<(Score, usize)> {
        let mut best: Option<(Score, usize)> = None;
        for (i, t) in self.state.iter().enumerate() {
            if best.is_none_or(|(bs, _)| t.score > bs) {
                best = Some((t.score, i));
            }
        }
        best
    }

    fn best_stale_unassigned(&self) -> Option<(Score, usize)> {
        if self.tops.len() >= self.count {
            return None; // enough tops: stop issuing work
        }
        let tops = self.tops.len();
        let mut best: Option<(Score, usize)> = None;
        for (i, t) in self.state.iter().enumerate() {
            if t.assigned.is_none()
                && t.aligned_with != tops
                && t.score > 0
                && best.is_none_or(|(bs, _)| t.score > bs)
            {
                best = Some((t.score, i));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::tag;
    use repro_core::{find_top_alignments, SplitMask};

    /// Drive the state machine synchronously with a perfect in-process
    /// "worker" that computes results immediately — a transport-free
    /// correctness test of the scheduling logic.
    fn drive(seq: &Seq, scoring: &Scoring, count: usize, workers: usize) -> Vec<TopAlignment> {
        drive_seeded(seq, scoring, count, workers, None).alignments
    }

    fn drive_seeded(
        seq: &Seq,
        scoring: &Scoring,
        count: usize,
        workers: usize,
        seed: Option<SeedConfig>,
    ) -> repro_core::TopAlignments {
        let mut master = MasterState::new_seeded(seq, scoring, count, seed);
        let mut worker_triangles: Vec<OverrideTriangle> = (0..workers)
            .map(|_| OverrideTriangle::new(seq.len()))
            .collect();
        let mut worker_caches: Vec<std::collections::HashMap<usize, Vec<Score>>> =
            vec![std::collections::HashMap::new(); workers];
        let mut pending: std::collections::VecDeque<(usize, usize, TaskItem)> =
            std::collections::VecDeque::new();

        let mut actions: Vec<MasterAction> = Vec::new();
        for w in 0..workers {
            actions.extend(master.worker_idle(w, 0));
        }
        loop {
            for a in actions.drain(..) {
                match a {
                    MasterAction::Assign { worker, task } => {
                        for item in task.items {
                            pending.push_back((worker, task.stamp, item));
                        }
                    }
                    MasterAction::Broadcast(acc) => {
                        for t in &mut worker_triangles {
                            for &(p, q) in &acc.pairs {
                                t.set(p, q);
                            }
                        }
                    }
                    MasterAction::Done => return master.into_result(),
                }
            }
            let Some((w, stamp, task)) = pending.pop_front() else {
                panic!("master stalled without Done");
            };
            // Worker computes with ITS replica (which here is in lockstep
            // with the master; async transports exercise the lag). Later
            // items of a batch may run under a replica that grew past
            // their stamp — the master records those results as stale
            // and reassigns, exactly like lagging remote speculation.
            let (prefix, suffix) = seq.split(task.r);
            let mask = SplitMask::new(&worker_triangles[w], task.r);
            let last = repro_align::sw_last_row(prefix, suffix, scoring, mask);
            let (score, shadows, first_row) = if task.first {
                assert!(
                    last.best_in_row <= task.bound,
                    "shipped bound {} must dominate the first-pass score {}",
                    task.bound,
                    last.best_in_row
                );
                if worker_triangles[w].is_empty() {
                    worker_caches[w].insert(task.r, last.row.clone());
                    (last.best_in_row, 0, Some(last.row))
                } else {
                    // Late first pass (seeded): store the clean row,
                    // score masked-vs-clean — same as a real worker.
                    let clean = repro_align::sw_last_row(prefix, suffix, scoring, NoMask);
                    let (s, _, shadows) =
                        repro_core::bottom::best_valid_entry_counted(&last.row, &clean.row);
                    worker_caches[w].insert(task.r, clean.row.clone());
                    (s, shadows, Some(clean.row))
                }
            } else {
                if let Some(row) = &task.row {
                    worker_caches[w].insert(task.r, row.clone());
                }
                let orig = worker_caches[w]
                    .get(&task.r)
                    .expect("realignment without a cached or attached row");
                let (s, _, shadows) = repro_core::bottom::best_valid_entry_counted(&last.row, orig);
                (s, shadows, None)
            };
            actions = master.result(
                w,
                ResultMsg {
                    r: task.r,
                    stamp,
                    attempt: task.attempt,
                    score,
                    cells: last.cells,
                    shadow_rejections: shadows,
                    incr: [0; 4],
                    first_row,
                },
            );
            let _ = tag::IDLE;
        }
    }

    #[test]
    fn matches_sequential_for_various_worker_counts() {
        let scoring = Scoring::dna_example();
        for text in ["ATGCATGCATGC", "ACGGTACGGTAACGGTTTTTACGGT", "AAAAAAAA"] {
            let seq = Seq::dna(text).unwrap();
            let want = find_top_alignments(&seq, &scoring, 4).alignments;
            for workers in [1, 2, 5] {
                let got = drive(&seq, &scoring, 4, workers);
                assert_eq!(got, want, "{workers} workers on {text}");
            }
        }
    }

    #[test]
    fn seeded_matches_unpruned_for_various_worker_counts() {
        let scoring = Scoring::dna_example();
        for text in ["ATGCATGCATGC", "ACGGTACGGTAACGGTTTTTACGGT", "AAAAAAAA"] {
            let seq = Seq::dna(text).unwrap();
            let want = find_top_alignments(&seq, &scoring, 4).alignments;
            for workers in [1, 2, 5] {
                let got = drive_seeded(&seq, &scoring, 4, workers, Some(SeedConfig::default()));
                assert_eq!(got.alignments, want, "seeded {workers} workers on {text}");
            }
        }
    }

    #[test]
    fn seeded_master_never_assigns_pruned_splits() {
        // Low-repeat fixture: two adjacent motif copies in long random
        // flanks. The bounds keep every seedless flank split below the
        // acceptance frontier, so the master never assigns them and
        // they count as pruned in the final stats.
        let motif = "ATGCATGCATGC";
        let text = format!("GGTTCCAACCGGTTAACCAGTGCA{motif}{motif}CAGTCCGGAATTCCGGTAACCGT");
        let seq = Seq::dna(&text).unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 1);
        let got = drive_seeded(&seq, &scoring, 1, 2, Some(SeedConfig::default()));
        assert_eq!(got.alignments, want.alignments);
        assert!(
            got.stats.splits_pruned > 0,
            "low-repeat input must leave splits never aligned"
        );
        assert!((got.stats.splits_pruned as usize) < seq.len() - 1);
        assert!(got.stats.seed_index_build_ns > 0);
        assert!(
            got.stats.alignments < (seq.len() - 1) as u64,
            "pruned splits must never have been assigned"
        );
    }

    #[test]
    fn terminates_on_exhausted_sequences() {
        let scoring = Scoring::dna_example();
        let seq = Seq::dna("ACGT").unwrap();
        let got = drive(&seq, &scoring, 10, 3);
        assert!(got.len() < 10);
    }

    #[test]
    fn stale_attempt_results_are_discarded() {
        let scoring = Scoring::dna_example();
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let mut master = MasterState::new(&seq, &scoring, 2);
        let actions = master.worker_idle(1, 0);
        let Some(MasterAction::Assign { worker, task }) = actions.first().cloned() else {
            panic!("one idle worker must receive an assignment");
        };
        assert_eq!(worker, 1);
        let item = task.items[0].clone();
        // The worker "dies"; its batch goes back to the pool.
        let _ = master.worker_dead(1);
        // A new worker picks the work up under fresh attempts…
        let actions = master.worker_idle(2, 0);
        let Some(MasterAction::Assign { task: task2, .. }) = actions.first().cloned() else {
            panic!("reissued task expected");
        };
        let item2 = task2.items[0].clone();
        assert_eq!(item2.r, item.r);
        assert!(
            item2.attempt > item.attempt,
            "reissue must bump the attempt"
        );
        // …and the zombie's late result (old attempt) changes nothing.
        let before = master.stats().alignments;
        let zombie = master.result(
            1,
            ResultMsg {
                r: item.r,
                stamp: task.stamp,
                attempt: item.attempt,
                score: 999_999, // a wrong score that must never be trusted
                cells: 1,
                shadow_rejections: 0,
                incr: [0; 4],
                first_row: Some(vec![0; seq.len()]),
            },
        );
        assert!(zombie.is_empty(), "dead worker traffic must be ignored");
        assert_eq!(master.stats().alignments, before);
    }

    #[test]
    fn duplicate_result_delivery_is_rejected_exactly_once() {
        // Satellite of the transport work: a result frame re-delivered
        // by the wire (duplicated, or retransmitted after the original
        // already landed) settles its assignment on the FIRST copy and
        // is discarded on every later one by the attempt-stamp check.
        let scoring = Scoring::dna_example();
        let seq = Seq::dna("ATGCATGC").unwrap();
        let mut master = MasterState::new(&seq, &scoring, 2);
        let actions = master.worker_idle(1, 0);
        let Some(MasterAction::Assign { task, .. }) = actions.first().cloned() else {
            panic!("one idle worker must receive an assignment");
        };
        let item = task.items[0].clone();
        let res = ResultMsg {
            r: item.r,
            stamp: task.stamp,
            attempt: item.attempt,
            score: 0, // keep the split unaccepted so the state is easy to audit
            cells: 7,
            shadow_rejections: 0,
            incr: [0; 4],
            first_row: Some(vec![0; 4]),
        };
        let first = master.result(1, res.clone());
        assert!(
            first.is_empty(),
            "the rest of the batch keeps the slot busy: nothing new to do"
        );
        let aligned = master.stats().alignments;
        assert_eq!(aligned, 1, "first copy settles and is counted");
        // The transport re-delivers the identical frame.
        let dup = master.result(1, res.clone());
        assert!(dup.is_empty(), "second copy must be discarded");
        assert_eq!(master.stats().alignments, aligned, "no double count");
        // And a third copy is equally inert.
        assert!(master.result(1, res).is_empty());
    }

    #[test]
    fn all_workers_lost_finishes_locally_with_sequential_result() {
        let scoring = Scoring::dna_example();
        for text in ["ATGCATGCATGC", "ACGGTACGGTAACGGTTTTTACGGT"] {
            let seq = Seq::dna(text).unwrap();
            let want = find_top_alignments(&seq, &scoring, 3).alignments;
            let mut master = MasterState::new(&seq, &scoring, 3);
            // Two workers register, take work, and vanish mid-search.
            let _ = master.worker_idle(1, 0);
            let _ = master.worker_idle(2, 0);
            let actions = master.finish_locally();
            assert!(
                matches!(actions.last(), Some(MasterAction::Done)),
                "local fallback must run the search to completion"
            );
            assert!(master.is_done());
            assert_eq!(master.into_result().alignments, want, "on {text}");
        }
    }

    #[test]
    fn repeated_idle_does_not_inflate_capacity() {
        let scoring = Scoring::dna_example();
        let seq = Seq::dna("ATGCATGC").unwrap();
        let mut master = MasterState::new(&seq, &scoring, 2);
        let first = master.worker_idle(1, 0);
        let assigns = |v: &[MasterAction]| {
            v.iter()
                .filter(|a| matches!(a, MasterAction::Assign { .. }))
                .count()
        };
        assert_eq!(assigns(&first), 1, "one idle worker, one task");
        // The slot's IDLE announcement is re-delivered (duplicate or
        // re-beacon): the busy slot must not be handed a second task.
        let again = master.worker_idle(1, 0);
        assert_eq!(assigns(&again), 0, "duplicate IDLE must not assign");
        // A *different* slot on the same rank is genuine extra capacity
        // (the hybrid engine runs several CPUs behind one rank).
        let second = master.worker_idle(1, 1);
        assert_eq!(assigns(&second), 1, "second slot is real capacity");
    }

    #[test]
    fn assignments_are_batched_and_bound_local() {
        let scoring = Scoring::dna_example();
        let seq = Seq::dna("ATGCATGCATGCATGC").unwrap(); // 15 splits
        let mut master = MasterState::new(&seq, &scoring, 3);
        let actions = master.worker_idle(1, 0);
        let tasks: Vec<&TaskMsg> = actions
            .iter()
            .filter_map(|a| match a {
                MasterAction::Assign { task, .. } => Some(task),
                _ => None,
            })
            .collect();
        assert_eq!(tasks.len(), 1, "one slot token, one batch frame");
        let batch = tasks[0];
        assert_eq!(
            batch.items.len(),
            MAX_BATCH,
            "a deep backlog fills the batch to the cap"
        );
        assert!(
            batch.items.windows(2).all(|w| w[0].r < w[1].r),
            "batch items must be distinct splits sorted by r (bound locality)"
        );
        // Every item consumed the same slot: a re-announced IDLE is a
        // duplicate while ANY item is outstanding.
        let again = master.worker_idle(1, 0);
        assert!(
            !again
                .iter()
                .any(|a| matches!(a, MasterAction::Assign { .. })),
            "slot stays busy until the whole batch settles"
        );
        // Settle all but the last item: still busy.
        for item in &batch.items[..MAX_BATCH - 1] {
            let _ = master.result(
                1,
                ResultMsg {
                    r: item.r,
                    stamp: batch.stamp,
                    attempt: item.attempt,
                    score: 0,
                    cells: 1,
                    shadow_rejections: 0,
                    incr: [0; 4],
                    first_row: Some(vec![0; seq.len()]),
                },
            );
        }
        let still = master.worker_idle(1, 0);
        assert!(
            !still
                .iter()
                .any(|a| matches!(a, MasterAction::Assign { .. })),
            "one outstanding item still pins the slot"
        );
        // The last item settles the batch: the slot comes back and the
        // master immediately hands out the next batch.
        let last = &batch.items[MAX_BATCH - 1];
        let next = master.result(
            1,
            ResultMsg {
                r: last.r,
                stamp: batch.stamp,
                attempt: last.attempt,
                score: 0,
                cells: 1,
                shadow_rejections: 0,
                incr: [0; 4],
                first_row: Some(vec![0; seq.len()]),
            },
        );
        assert!(
            next.iter()
                .any(|a| matches!(a, MasterAction::Assign { .. })),
            "freed slot is refilled with the next batch"
        );
    }

    #[test]
    fn thin_backlog_spreads_across_idle_slots() {
        // More idle tokens than MAX_BATCH-sized shares of the backlog:
        // the adaptive batch size must spread work instead of letting
        // the first slot hoard it.
        let scoring = Scoring::dna_example();
        let seq = Seq::dna("ATGCATGC").unwrap(); // 7 splits
        let mut master = MasterState::new(&seq, &scoring, 3);
        // Register 4 slots on a dead-letter pattern: hold the actions.
        let mut all = Vec::new();
        for w in 0..4 {
            all.extend(master.worker_idle(w, 0));
        }
        let sizes: Vec<usize> = all
            .iter()
            .filter_map(|a| match a {
                MasterAction::Assign { task, .. } => Some(task.items.len()),
                _ => None,
            })
            .collect();
        assert!(
            sizes.len() >= 2,
            "7 tasks over 4 slots must use more than one slot, got {sizes:?}"
        );
        assert_eq!(sizes.iter().sum::<usize>(), 7, "every split assigned once");
        assert!(
            sizes.iter().all(|&s| s <= MAX_BATCH),
            "no batch may exceed the cap: {sizes:?}"
        );
    }
}
