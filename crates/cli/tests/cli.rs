//! End-to-end tests of the `repro` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn repro_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn write_fasta(name: &str, contents: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("repro-cli-test-{name}-{}.fa", std::process::id()));
    std::fs::write(&path, contents).expect("write temp fasta");
    path
}

#[test]
fn analyzes_dna_repeat_file() {
    let path = write_fasta("toy", ">toy repeat\nATGCATGCATGC\n");
    let out = repro_bin()
        .args(["--alphabet", "dna", "--tops", "3"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(">toy repeat (12 residues"));
    assert!(stdout.contains("score      8"));
    assert!(stdout.contains("period Some(4)"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn reads_stdin_with_dash() {
    let mut child = repro_bin()
        .args(["--alphabet", "dna", "--tops", "2", "--quiet", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b">x\nACGGTACGGTACGGT\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("repeats: period"));
    // --quiet suppresses the per-alignment listing.
    assert!(!stdout.contains("top   1"));
}

#[test]
fn engines_give_identical_answers() {
    let path = write_fasta("engines", ">r\nACGGTACGGTAACGGTACGGT\n");
    let mut outputs = Vec::new();
    for engine in [
        "seq",
        "simd",
        "simd4",
        "simd8",
        "simd16",
        "simd-threads:2",
        "threads:2",
        "cluster:2",
        "hybrid:2:2",
        "legacy",
    ] {
        let out = repro_bin()
            .args(["--alphabet", "dna", "--tops", "4", "--engine", engine])
            .arg(&path)
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{engine} failed");
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        // Strip the timing line, which legitimately differs.
        let stable: String = text.lines().filter(|l| !l.starts_with("work:")).collect();
        outputs.push((engine, stable));
    }
    for w in outputs.windows(2) {
        assert_eq!(w[0].1, w[1].1, "{} vs {}", w[0].0, w[1].0);
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn unsupported_lane_width_is_a_clean_typed_error() {
    // SSE2 registers hold at most 8 i16 lanes, so pinning the path to
    // sse2 while asking for 16 lanes must fail gracefully on *every*
    // x86-64 machine (and on other machines the sse2 path itself is
    // unavailable — also a clean, path-naming error). Never a panic.
    let path = write_fasta("lanes16", ">r\nACGGTACGGTACGGT\n");
    let out = repro_bin()
        .args([
            "--alphabet",
            "dna",
            "--engine",
            "simd",
            "--dispatch",
            "sse2",
            "--lanes",
            "16",
        ])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("sse2"), "stderr: {stderr}");
    assert!(
        !stderr.contains("panicked"),
        "must be a diagnostic, not a panic: {stderr}"
    );
    let _ = std::fs::remove_file(path);

    // A width outside {4, 8, 16} is rejected at parse time.
    let out = repro_bin()
        .args(["--engine", "simd", "--lanes", "32", "x.fa"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported lane width 32"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = repro_bin()
        .arg("/nonexistent/genome.fa")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn bad_flags_are_rejected() {
    for args in [
        vec!["--engine", "warp-drive", "x.fa"],
        vec!["--tops", "several", "x.fa"],
        vec!["--alphabet", "klingon", "x.fa"],
        vec!["--engine", "cluster:0", "x.fa"],
        vec!["--engine", "threads:0", "x.fa"],
        vec!["--engine", "hybrid:1:1", "x.fa"],
        vec![],
    ] {
        let out = repro_bin().args(&args).output().expect("binary runs");
        assert!(!out.status.success(), "args {args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.lines().filter(|l| !l.trim().is_empty()).count() <= 2,
            "args {args:?}: diagnostic should be short, got: {stderr}"
        );
    }
}

#[test]
fn bad_residues_are_a_clean_error() {
    let path = write_fasta("residues", ">r\nACGT!!ACGT\n");
    let out = repro_bin()
        .args(["--alphabet", "dna"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid residue"), "stderr: {stderr}");
    assert!(stderr.contains("line 2"), "stderr: {stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn empty_input_is_a_clean_error() {
    let path = write_fasta("empty", "");
    let out = repro_bin()
        .args(["--alphabet", "dna"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no FASTA records"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn malformed_fasta_is_a_clean_error() {
    let path = write_fasta("bad", "ACGT without header\n");
    let out = repro_bin()
        .args(["--alphabet", "dna"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("FASTA"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn generate_then_analyze_roundtrip() {
    // Generate a tandem workload, then feed it straight back in.
    let gen = repro_bin()
        .args(["--generate", "tandem:20:5:7"])
        .output()
        .expect("binary runs");
    assert!(gen.status.success());
    let fasta = String::from_utf8(gen.stdout).unwrap();
    assert!(fasta.starts_with(">tandem unit=20 copies=5 seed=7"));

    let mut child = repro_bin()
        .args([
            "--alphabet",
            "dna",
            "--tops",
            "6",
            "--consensus",
            "--cigar",
            "-",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(fasta.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CIGAR"));
    assert!(stdout.contains("consensus ("));
    assert!(stdout.contains("period Some("));
}

#[test]
fn generate_titin_and_bad_specs() {
    let out = repro_bin()
        .args(["--generate", "titin:150:3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let fasta = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        fasta
            .lines()
            .filter(|l| !l.starts_with('>'))
            .map(|l| l.len())
            .sum::<usize>(),
        150
    );

    for bad in ["titin:abc:1", "nonsense:1:2", "tandem:5"] {
        let out = repro_bin()
            .args(["--generate", bad])
            .output()
            .expect("binary runs");
        assert!(!out.status.success(), "{bad} should fail");
    }
}

#[test]
fn generate_island_matches_its_spec() {
    // The e2e_speed fixture: copies × unit inside two explicit flanks,
    // spacers bounded by the unit length. Total length is therefore
    // bracketed by the spec even though spacers are random.
    let out = repro_bin()
        .args(["--generate", "island:30:4:150:1"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let fasta = String::from_utf8_lossy(&out.stdout);
    assert!(fasta.starts_with(">repeat-island unit=30 copies=4 flank=150 seed=1"));
    let len: usize = fasta
        .lines()
        .filter(|l| !l.starts_with('>'))
        .map(|l| l.len())
        .sum();
    // 2 flanks + 4 units + 3 spacers of 15..=30 residues.
    assert!((465..=510).contains(&len), "unexpected island length {len}");
}

#[test]
fn gff_output() {
    let path = write_fasta("gff", ">chrT extra words\nATGCATGCATGCATGC\n");
    let out = repro_bin()
        .args(["--alphabet", "dna", "--tops", "4", "--quiet", "--gff"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("##gff-version 3"));
    assert!(stdout.contains("chrT\trepro\trepeat_unit\t1\t4\t"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn low_memory_flag_matches_default() {
    let path = write_fasta("lowmem", ">r\nATGCATGCATGCATGC\n");
    let normal = repro_bin()
        .args(["--alphabet", "dna", "--tops", "3"])
        .arg(&path)
        .output()
        .unwrap();
    let low = repro_bin()
        .args(["--alphabet", "dna", "--tops", "3", "--low-memory"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(normal.status.success() && low.status.success());
    let strip = |b: &[u8]| -> String {
        String::from_utf8_lossy(b)
            .lines()
            .filter(|l| !l.starts_with("work:"))
            .collect()
    };
    assert_eq!(strip(&normal.stdout), strip(&low.stdout));
    let _ = std::fs::remove_file(path);
}

#[test]
fn custom_matrix_file() {
    let matrix = std::env::temp_dir().join(format!("repro-cli-matrix-{}.txt", std::process::id()));
    std::fs::write(
        &matrix,
        "   A  C  G  T\nA  5 -4 -4 -4\nC -4  5 -4 -4\nG -4 -4  5 -4\nT -4 -4 -4  5\n",
    )
    .unwrap();
    let path = write_fasta("matrix", ">m\nATGCATGCATGC\n");
    let out = repro_bin()
        .args(["--alphabet", "dna", "--tops", "1", "--matrix"])
        .arg(&matrix)
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // 4 matches at +5 each.
    assert!(String::from_utf8_lossy(&out.stdout).contains("score     20"));
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(matrix);
}

#[test]
fn proc_transport_agrees_with_sim_end_to_end() {
    let path = write_fasta("proc-vs-sim", ">toy repeat\nATGCATGCATGCATGC\n");
    let base = ["--alphabet", "dna", "--tops", "3", "--engine", "cluster:2"];
    let sim = repro_bin().args(base).arg(&path).output().unwrap();
    let proc = repro_bin()
        .args(base)
        .args(["--transport", "proc"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        sim.status.success() && proc.status.success(),
        "sim stderr: {}\nproc stderr: {}",
        String::from_utf8_lossy(&sim.stderr),
        String::from_utf8_lossy(&proc.stderr)
    );
    // Identical analysis either way; only the wall-clock line differs.
    let strip = |b: &[u8]| -> String {
        String::from_utf8_lossy(b)
            .lines()
            .filter(|l| !l.starts_with("work:"))
            .collect()
    };
    assert_eq!(strip(&sim.stdout), strip(&proc.stdout));
    let _ = std::fs::remove_file(path);
}

#[test]
fn worker_subcommand_requires_connect() {
    let out = repro_bin().arg("worker").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--connect"));
}

/// Spawn the real binary as a worker process against an in-test hub:
/// the worker must join, take the job greeting, announce IDLE, serve a
/// first-pass task, and exit 0 on DONE — the full cross-process
/// protocol, driven from the master's side of the wire.
#[test]
fn worker_subcommand_serves_a_real_master_over_sockets() {
    use repro::cluster::protocol::{tag, JobMsg, ResultMsg, TaskItem, TaskMsg};
    use repro::xmpi::socket::SocketHub;
    use repro::xmpi::Comm;
    use repro::{Scoring, Seq};
    use std::time::{Duration, Instant};

    let seq = Seq::dna("ATGCATGCATGC").unwrap();
    let scoring = Scoring::dna_example();
    let hub = SocketHub::bind("127.0.0.1:0").unwrap();
    let job = JobMsg {
        count: 3,
        seq: seq.clone(),
        scoring: scoring.clone(),
        deadline_ms: 10_000,
        checkpoint_budget: None,
    };
    let payload = job.encode();
    hub.add_greeting(tag::JOB, &payload);
    hub.add_greeting(tag::JOB, &payload);

    let mut child = repro_bin()
        .args(["worker", "--connect", &hub.addr().to_string()])
        .stdout(Stdio::null())
        .spawn()
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(15);
    // The worker joins, decodes the job, and announces itself IDLE.
    loop {
        match hub.recv_timeout(Duration::from_millis(200)) {
            Ok(m) if m.tag == tag::IDLE => break,
            Ok(_) => {}
            Err(_) if Instant::now() < deadline => {}
            Err(e) => panic!("no IDLE from the worker process: {e:?}"),
        }
    }

    // Hand it a first-pass task; the result must carry the bottom row.
    let task = TaskMsg::single(
        0,
        TaskItem {
            r: 4,
            attempt: 1,
            first: true,
            bound: repro::align::Score::MAX,
            row: None,
        },
    );
    hub.send(1, tag::TASK, task.encode()).unwrap();
    let res = loop {
        match hub.recv_timeout(Duration::from_millis(200)) {
            Ok(m) if m.tag == tag::RESULT => break ResultMsg::decode(&m.payload).unwrap(),
            Ok(_) => {}
            Err(_) if Instant::now() < deadline => {}
            Err(e) => panic!("no RESULT from the worker process: {e:?}"),
        }
    };
    assert_eq!((res.r, res.attempt), (4, 1));
    assert!(res.first_row.is_some(), "first pass must return its row");

    // DONE sends it home; the process exits cleanly.
    hub.send(1, tag::DONE, vec![]).unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "worker exit: {status:?}");
}
