//! `repro` — command-line internal-repeat detection.
//!
//! ```text
//! repro [OPTIONS] <input.fasta | ->
//! repro --generate titin:LEN:SEED | tandem:U:C:SEED | interspersed:U:C:SEED |
//!                  sparse:U:C:SEED | island:U:C:FLANK:SEED
//! repro worker --connect HOST:PORT
//! repro trace --chrome out.json [OPTIONS] <input.fasta | ->
//!
//! Options:
//!   --alphabet dna|protein     residue alphabet         [default: protein]
//!   --tops N                   top alignments to find   [default: 10]
//!   --engine ENGINE            seq | simd | simd4 | simd8 | simd16 |
//!                              simd-threads:N | threads:N |
//!                              cluster:N | hybrid:N:T | legacy
//!                                                       [default: seq]
//!   --transport sim|proc       cluster:N message substrate: in-process
//!                              rank threads, or real TCP sockets (the
//!                              master binds a hub; workers may also
//!                              join from other processes with the
//!                              `repro worker` subcommand)
//!                                                       [default: sim]
//!   --lanes auto|4|8|16        SIMD lane width for --engine simd /
//!                              simd-threads:N            [default: auto]
//!   --dispatch auto|portable|sse2|avx2
//!                              SIMD kernel path, same engines
//!                                                       [default: auto]
//!   --match N --mismatch N     simple exchange matrix (DNA default 2/-1)
//!   --open N --extend N        affine gap penalties
//!   --matrix FILE              NCBI-format exchange matrix
//!   --pairs                    print every matched pair
//!   --cigar                    print a CIGAR per top alignment
//!   --gff                      print the repeat units as GFF3
//!   --consensus                print the repeat-unit consensus
//!   --low-memory               Appendix A linear-memory configuration
//!   --checkpoint-budget BYTES  enable incremental realignment with a
//!                              checkpoint store of BYTES (0 = account
//!                              only; results identical either way)
//!   --no-prune                 disable seeded split pruning (on by
//!                              default; results identical either way)
//!   --seed-k K                 k-mer width of the seed index used for
//!                              split pruning            [default: 6]
//!   --quiet                    suppress the per-alignment listing
//!   --report FILE              write a structured JSON run report
//!                              (`{"reports":[…]}`, one per record)
//!   --trace FILE               write the structured event log as JSONL
//!                              (cluster/hybrid engines; see repro-obs)
//!   --progress FILE|-          stream JSONL progress heartbeats to FILE
//!                              (`-` = stderr) while the run executes
//!   --chrome FILE              export a Chrome trace-event JSON (phase
//!                              spans + worker task spans; open it in
//!                              chrome://tracing or Perfetto); needs a
//!                              single-record input
//!   --generate SPEC            emit a workload FASTA and exit
//! ```
//!
//! Reads FASTA (`-` = stdin), prints the top alignments and the repeat
//! report per record.
//!
//! `repro worker --connect HOST:PORT` turns this process into a cluster
//! worker: it joins the hub at that address, receives the job
//! description, and serves tasks until the master says DONE (exit 0) or
//! goes silent past the job's deadline. Workers may join a run that is
//! already in progress.
//!
//! `repro trace` is the same analysis pipeline with Chrome trace export
//! made mandatory: `--chrome out.json` is required, and event capture
//! is forced on so the worker task spans materialize.

use repro::align::fasta::read_fasta;
use repro::align::{Alphabet, ExchangeMatrix, GapPenalties};
use repro::{DispatchPath, Engine, LaneWidth, LegacyKernel, Repro, Scoring, Seq, Transport};
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    input: String,
    alphabet: Alphabet,
    tops: usize,
    engine: Engine,
    transport: Transport,
    lanes: Option<Option<LaneWidth>>,
    dispatch: Option<Option<DispatchPath>>,
    match_score: Option<i32>,
    mismatch_score: Option<i32>,
    open: Option<i32>,
    extend: Option<i32>,
    matrix_file: Option<String>,
    pairs: bool,
    cigar: bool,
    gff: bool,
    consensus: bool,
    low_memory: bool,
    checkpoint_budget: Option<usize>,
    no_prune: bool,
    seed_k: Option<usize>,
    quiet: bool,
    report: Option<String>,
    trace: Option<String>,
    progress: Option<String>,
    chrome: Option<String>,
    generate: Option<String>,
}

fn usage() -> &'static str {
    "usage: repro [--alphabet dna|protein] [--tops N] \
     [--engine seq|simd|simd4|simd8|simd16|simd-threads:N|threads:N|cluster:N|hybrid:N:T|legacy] \
     [--transport sim|proc] \
     [--lanes auto|4|8|16] [--dispatch auto|portable|sse2|avx2] \
     [--match N] [--mismatch N] [--open N] [--extend N] [--matrix FILE] \
     [--pairs] [--cigar] [--consensus] [--low-memory] [--checkpoint-budget BYTES] \
     [--no-prune] [--seed-k K] [--quiet] \
     [--report FILE] [--trace FILE] [--progress FILE|-] [--chrome FILE] \
     <input.fasta | -> | repro --generate titin:LEN:SEED | \
     repro worker --connect HOST:PORT | \
     repro trace --chrome out.json [OPTIONS] <input.fasta | ->"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        alphabet: Alphabet::Protein,
        tops: 10,
        engine: Engine::Sequential,
        transport: Transport::Sim,
        lanes: None,
        dispatch: None,
        match_score: None,
        mismatch_score: None,
        open: None,
        extend: None,
        matrix_file: None,
        pairs: false,
        cigar: false,
        gff: false,
        consensus: false,
        low_memory: false,
        checkpoint_budget: None,
        no_prune: false,
        seed_k: None,
        quiet: false,
        report: None,
        trace: None,
        progress: None,
        chrome: None,
        generate: None,
    };
    let mut it = args.iter();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--alphabet" => {
                opts.alphabet = match next("--alphabet")?.as_str() {
                    "dna" => Alphabet::Dna,
                    "protein" => Alphabet::Protein,
                    other => return Err(format!("unknown alphabet {other:?}")),
                }
            }
            "--tops" => {
                opts.tops = next("--tops")?
                    .parse()
                    .map_err(|_| "--tops needs an integer".to_string())?
            }
            "--engine" => {
                let v = next("--engine")?;
                opts.engine = match v.as_str() {
                    "seq" => Engine::Sequential,
                    "simd" => Engine::SimdDispatch {
                        width: None,
                        path: None,
                    },
                    "simd4" => Engine::Simd(LaneWidth::X4),
                    "simd8" => Engine::Simd(LaneWidth::X8),
                    "simd16" => Engine::Simd(LaneWidth::X16),
                    "legacy" => Engine::Legacy(LegacyKernel::Gotoh),
                    "legacy-naive" => Engine::Legacy(LegacyKernel::Naive),
                    other => {
                        if let Some(n) = other.strip_prefix("simd-threads:") {
                            let threads: usize =
                                n.parse().map_err(|_| "bad thread count".to_string())?;
                            if threads == 0 {
                                return Err("simd-threads:N needs at least 1 thread".to_string());
                            }
                            Engine::SimdThreads {
                                threads,
                                width: None,
                                path: None,
                            }
                        } else if let Some(n) = other.strip_prefix("threads:") {
                            let threads: usize =
                                n.parse().map_err(|_| "bad thread count".to_string())?;
                            if threads == 0 {
                                return Err("threads:N needs at least 1 thread".to_string());
                            }
                            Engine::Threads(threads)
                        } else if let Some(n) = other.strip_prefix("cluster:") {
                            let workers: usize =
                                n.parse().map_err(|_| "bad worker count".to_string())?;
                            if workers == 0 {
                                return Err("cluster:N needs at least 1 worker".to_string());
                            }
                            Engine::Cluster { workers }
                        } else if let Some(spec) = other.strip_prefix("hybrid:") {
                            let (nodes, tpn) = spec
                                .split_once(':')
                                .ok_or_else(|| "hybrid needs nodes:threads".to_string())?;
                            let nodes: usize =
                                nodes.parse().map_err(|_| "bad node count".to_string())?;
                            let threads_per_node: usize = tpn
                                .parse()
                                .map_err(|_| "bad threads-per-node".to_string())?;
                            if nodes == 0 || threads_per_node == 0 || nodes * threads_per_node < 2 {
                                return Err(
                                    "hybrid:N:T needs at least 2 CPUs total (one is the master)"
                                        .to_string(),
                                );
                            }
                            Engine::Hybrid {
                                nodes,
                                threads_per_node,
                            }
                        } else {
                            return Err(format!("unknown engine {other:?}"));
                        }
                    }
                }
            }
            "--transport" => {
                opts.transport = match next("--transport")?.as_str() {
                    "sim" => Transport::Sim,
                    "proc" => Transport::Proc,
                    other => return Err(format!("--transport needs sim or proc, not {other:?}")),
                }
            }
            "--lanes" => {
                let v = next("--lanes")?;
                opts.lanes = Some(match v.as_str() {
                    "auto" => None,
                    other => {
                        let n: usize = other.parse().map_err(|_| {
                            format!("--lanes needs auto, 4, 8 or 16, not {other:?}")
                        })?;
                        Some(LaneWidth::from_lanes(n).ok_or_else(|| {
                            format!("unsupported lane width {n}: expected auto, 4, 8 or 16")
                        })?)
                    }
                });
            }
            "--dispatch" => {
                opts.dispatch = Some(match next("--dispatch")?.as_str() {
                    "auto" => None,
                    "portable" => Some(DispatchPath::Portable),
                    "sse2" => Some(DispatchPath::Sse2),
                    "avx2" => Some(DispatchPath::Avx2),
                    other => {
                        return Err(format!(
                            "--dispatch needs auto, portable, sse2 or avx2, not {other:?}"
                        ))
                    }
                });
            }
            "--match" => opts.match_score = Some(parse_i32(next("--match")?)?),
            "--mismatch" => opts.mismatch_score = Some(parse_i32(next("--mismatch")?)?),
            "--open" => opts.open = Some(parse_i32(next("--open")?)?),
            "--extend" => opts.extend = Some(parse_i32(next("--extend")?)?),
            "--matrix" => opts.matrix_file = Some(next("--matrix")?.clone()),
            "--generate" => opts.generate = Some(next("--generate")?.clone()),
            "--pairs" => opts.pairs = true,
            "--cigar" => opts.cigar = true,
            "--gff" => opts.gff = true,
            "--consensus" => opts.consensus = true,
            "--low-memory" => opts.low_memory = true,
            "--checkpoint-budget" => {
                opts.checkpoint_budget = Some(
                    next("--checkpoint-budget")?
                        .parse()
                        .map_err(|_| "--checkpoint-budget needs a byte count".to_string())?,
                )
            }
            "--no-prune" => opts.no_prune = true,
            "--seed-k" => {
                let k: usize = next("--seed-k")?
                    .parse()
                    .map_err(|_| "--seed-k needs an integer".to_string())?;
                if !(1..=repro::align::MAX_KMER_K).contains(&k) {
                    return Err(format!(
                        "--seed-k {k} out of range 1..={}",
                        repro::align::MAX_KMER_K
                    ));
                }
                opts.seed_k = Some(k);
            }
            "--quiet" => opts.quiet = true,
            "--report" => opts.report = Some(next("--report")?.clone()),
            "--trace" => opts.trace = Some(next("--trace")?.clone()),
            "--progress" => opts.progress = Some(next("--progress")?.clone()),
            "--chrome" => opts.chrome = Some(next("--chrome")?.clone()),
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}\n{}", usage()))
            }
            other => positional.push(other.to_string()),
        }
    }
    if opts.lanes.is_some() || opts.dispatch.is_some() {
        // Fold the kernel knobs into the engine; they only make sense for
        // the runtime-dispatched engines.
        match &mut opts.engine {
            Engine::SimdDispatch { width, path } | Engine::SimdThreads { width, path, .. } => {
                if let Some(w) = opts.lanes {
                    *width = w;
                }
                if let Some(p) = opts.dispatch {
                    *path = p;
                }
            }
            _ => {
                return Err(
                    "--lanes/--dispatch apply only to --engine simd and simd-threads:N".to_string(),
                )
            }
        }
    }
    match (opts.generate.is_some(), positional.len()) {
        (true, 0) => Ok(opts),
        (false, 1) => {
            opts.input = positional.pop().expect("len checked");
            Ok(opts)
        }
        (false, 0) => Err(format!("missing input file\n{}", usage())),
        _ => Err(format!("too many positional arguments\n{}", usage())),
    }
}

/// Generate a workload FASTA to stdout: `titin:LEN:SEED` (protein),
/// `tandem:UNIT:COPIES:SEED` (DNA), `interspersed:UNIT:COPIES:SEED`
/// (protein), `sparse:UNIT:COPIES:SEED` (protein sparse island — a
/// tandem block in long unrelated flanks, the split-pruning fixture)
/// or `island:UNIT:COPIES:FLANK:SEED` (protein interspersed copies
/// with tight spacers in explicit flanks, the `e2e_speed` fixture).
fn generate(spec: &str) -> Result<(), String> {
    use repro::align::fasta::{format_fasta, FastaRecord};
    use repro::seqgen::{titin_like, PlantedRepeats, RepeatSpec};

    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<usize, String> {
        s.parse().map_err(|_| format!("{s:?} is not a number"))
    };
    let record = match parts.as_slice() {
        ["titin", len, seed] => FastaRecord {
            id: format!("titin-like length={len} seed={seed}"),
            seq: titin_like(num(len)?, num(seed)? as u64),
        },
        ["tandem", unit, copies, seed] => {
            let planted = PlantedRepeats::generate(
                &RepeatSpec::dna_tandem(num(unit)?, num(copies)?),
                num(seed)? as u64,
            );
            FastaRecord {
                id: format!("tandem unit={unit} copies={copies} seed={seed}"),
                seq: planted.seq,
            }
        }
        ["interspersed", unit, copies, seed] => {
            let planted = PlantedRepeats::generate(
                &RepeatSpec::protein_interspersed(num(unit)?, num(copies)?),
                num(seed)? as u64,
            );
            FastaRecord {
                id: format!("interspersed unit={unit} copies={copies} seed={seed}"),
                seq: planted.seq,
            }
        }
        ["sparse", unit, copies, seed] => {
            let planted = PlantedRepeats::generate(
                &RepeatSpec::protein_sparse_island(num(unit)?, num(copies)?),
                num(seed)? as u64,
            );
            FastaRecord {
                id: format!("sparse-island unit={unit} copies={copies} seed={seed}"),
                seq: planted.seq,
            }
        }
        // The `e2e_speed` bench fixture: interspersed protein copies
        // with tight spacers and an explicit flank, so EXPERIMENTS.md
        // protocols over that workload are reproducible from the CLI.
        ["island", unit, copies, flank, seed] => {
            use repro::seqgen::RepeatKind;
            let unit_len = num(unit)?;
            let spec = RepeatSpec {
                flank: num(flank)?,
                kind: RepeatKind::Interspersed {
                    min_spacer: unit_len / 2,
                    max_spacer: unit_len,
                },
                ..RepeatSpec::protein_interspersed(unit_len, num(copies)?)
            };
            let planted = PlantedRepeats::generate(&spec, num(seed)? as u64);
            FastaRecord {
                id: format!(
                    "repeat-island unit={unit} copies={copies} flank={flank} seed={seed}"
                ),
                seq: planted.seq,
            }
        }
        _ => {
            return Err(format!(
                "bad --generate spec {spec:?}: expected titin:LEN:SEED, \
                 tandem:UNIT:COPIES:SEED, interspersed:UNIT:COPIES:SEED, \
                 sparse:UNIT:COPIES:SEED or island:UNIT:COPIES:FLANK:SEED"
            ))
        }
    };
    print!("{}", format_fasta(&[record], 60));
    Ok(())
}

fn parse_i32(s: &str) -> Result<i32, String> {
    s.parse().map_err(|_| format!("{s:?} is not an integer"))
}

fn build_scoring(opts: &Options) -> Result<Scoring, String> {
    let exchange = if let Some(path) = &opts.matrix_file {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read matrix {path}: {e}"))?;
        ExchangeMatrix::parse_ncbi(opts.alphabet, &text)
            .map_err(|e| format!("bad matrix file {path}: {e}"))?
    } else if opts.match_score.is_some() || opts.mismatch_score.is_some() {
        ExchangeMatrix::match_mismatch(
            opts.alphabet,
            opts.match_score.unwrap_or(2),
            opts.mismatch_score.unwrap_or(-1),
        )
    } else {
        match opts.alphabet {
            Alphabet::Dna => ExchangeMatrix::dna_default(),
            Alphabet::Protein => ExchangeMatrix::blosum62(),
        }
    };
    let (default_open, default_extend) = match opts.alphabet {
        Alphabet::Dna => (2, 1),
        Alphabet::Protein => (10, 1),
    };
    let gaps = GapPenalties::new(
        opts.open.unwrap_or(default_open),
        opts.extend.unwrap_or(default_extend),
    );
    Ok(Scoring::new(exchange, gaps))
}

fn run(opts: &Options) -> Result<(), String> {
    if let Some(spec) = &opts.generate {
        return generate(spec);
    }
    let scoring = build_scoring(opts)?;
    let records = if opts.input == "-" {
        let stdin = std::io::stdin();
        read_fasta(stdin.lock(), opts.alphabet)
    } else {
        let file = std::fs::File::open(&opts.input)
            .map_err(|e| format!("cannot open {}: {e}", opts.input))?;
        read_fasta(std::io::BufReader::new(file), opts.alphabet)
    }
    .map_err(|e| format!("FASTA error: {e}"))?;

    if records.is_empty() {
        return Err("no FASTA records in input".to_string());
    }
    if opts.chrome.is_some() && records.len() > 1 {
        return Err(format!(
            "--chrome exports one timeline and the input has {} records; \
             split the FASTA or pick one record",
            records.len()
        ));
    }

    // One sink for the whole input: a multi-record file streams all its
    // runs into the same heartbeat log (each run's final forced line
    // marks the boundary).
    let progress_sink = match opts.progress.as_deref() {
        None => None,
        Some("-") => Some(repro::obs::ProgressSink::stderr(
            repro::obs::DEFAULT_HEARTBEAT,
        )),
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create progress file {path}: {e}"))?;
            Some(repro::obs::ProgressSink::to_writer(
                Box::new(file),
                repro::obs::DEFAULT_HEARTBEAT,
            ))
        }
    };

    let mut reports: Vec<repro::obs::json::Json> = Vec::new();
    let mut trace_lines: Vec<String> = Vec::new();
    for record in &records {
        let analysis = analyze_one(
            &record.id,
            &record.seq,
            &scoring,
            opts,
            progress_sink.clone(),
        )?;
        if opts.report.is_some() {
            reports.push(analysis.run.to_json());
        }
        if opts.trace.is_some() {
            trace_lines.extend(analysis.events.iter().map(|e| e.to_jsonl()));
        }
        if let Some(path) = &opts.chrome {
            let doc = repro::trace::chrome_trace(&analysis.run, &analysis.events);
            let mut text = doc.to_string_compact();
            text.push('\n');
            std::fs::write(path, text)
                .map_err(|e| format!("cannot write chrome trace {path}: {e}"))?;
        }
    }
    if let Some(path) = &opts.report {
        let doc = repro::obs::json::obj(vec![("reports", repro::obs::json::Json::Arr(reports))]);
        let mut text = doc.to_string_compact();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write report {path}: {e}"))?;
    }
    if let Some(path) = &opts.trace {
        let mut text = trace_lines.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        std::fs::write(path, text).map_err(|e| format!("cannot write trace {path}: {e}"))?;
    }
    Ok(())
}

fn analyze_one(
    id: &str,
    seq: &Seq,
    scoring: &Scoring,
    opts: &Options,
    progress: Option<repro::obs::ProgressSink>,
) -> Result<repro::Analysis, String> {
    println!(
        ">{id} ({} residues, {} alphabet)",
        seq.len(),
        seq.alphabet()
    );
    let t0 = std::time::Instant::now();
    let analysis = Repro::new(scoring.clone())
        .top_alignments(opts.tops)
        .engine(opts.engine)
        .transport(opts.transport)
        .low_memory(opts.low_memory)
        .checkpoint_budget(opts.checkpoint_budget)
        .seed_config(if opts.no_prune {
            None
        } else {
            // The CLI defaults pruning ON (the library default is off,
            // keeping its golden tests on the plain path).
            Some(match opts.seed_k {
                Some(k) => repro::SeedConfig::new(k),
                None => repro::SeedConfig::default(),
            })
        })
        .trace(opts.trace.is_some() || opts.chrome.is_some())
        .progress(progress)
        .try_run(seq)
        .map_err(|e| format!("engine failure on {id:?}: {e}"))?;
    let elapsed = t0.elapsed();

    if !opts.quiet {
        for top in &analysis.tops.alignments {
            let start = top.pairs.first().copied().unwrap_or((0, 0));
            let end = top.pairs.last().copied().unwrap_or((0, 0));
            println!(
                "top {:>3}  score {:>6}  split {:>6}  {}..{} ~ {}..{}  ({} pairs, {:.0}% id)",
                top.index + 1,
                top.score,
                top.r,
                start.0,
                end.0,
                start.1,
                end.1,
                top.pairs.len(),
                100.0 * top.identity(seq)
            );
            if opts.cigar {
                println!("    CIGAR {}", top.cigar());
            }
            if opts.pairs {
                for &(p, q) in &top.pairs {
                    println!("    {p} ~ {q}");
                }
            }
        }
    }

    let report = &analysis.report;
    println!(
        "repeats: period {:?}, {} units, {:.1}% coverage",
        report.period,
        report.copies(),
        100.0 * report.coverage(seq.len())
    );
    for unit in &report.units {
        println!("  unit {}..{}", unit.range.start, unit.range.end);
    }
    if opts.gff {
        print!(
            "{}",
            report.to_gff(id.split_whitespace().next().unwrap_or(id))
        );
    }
    if opts.consensus {
        if let Some(consensus) = &analysis.consensus {
            println!(
                "consensus ({} residues, mean identity {:.0}%): {}",
                consensus.consensus.len(),
                100.0 * consensus.mean_identity(),
                consensus.consensus
            );
        } else {
            println!("consensus: (no units)");
        }
    }
    println!(
        "work: {} alignments, {} cells, {} tracebacks, {:.3?}",
        analysis.tops.stats.alignments,
        analysis.tops.stats.cells,
        analysis.tops.stats.tracebacks,
        elapsed
    );
    Ok(analysis)
}

/// Restore the default SIGPIPE disposition so `repro ... | head` ends
/// the process quietly (as cat/grep do) instead of panicking when the
/// downstream reader closes the pipe. Rust's runtime ignores SIGPIPE,
/// which turns every println! into a potential broken-pipe panic.
#[cfg(unix)]
fn restore_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn restore_sigpipe() {}

/// `repro worker --connect HOST:PORT`: serve a cluster run as a worker
/// process until the master says DONE.
fn run_worker(args: &[String]) -> ExitCode {
    const USAGE: &str = "usage: repro worker --connect HOST:PORT";
    let mut connect = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = it.next().cloned(),
            other => {
                eprintln!("repro worker: unknown argument {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = connect else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match repro::cluster::socket_worker(&addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro worker: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro trace --chrome out.json [OPTIONS] <input>`: the normal
/// analysis pipeline with Chrome trace export mandatory.
fn run_trace(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.chrome.is_none() {
        eprintln!("repro trace: --chrome FILE is required\n{}", usage());
        return ExitCode::FAILURE;
    }
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("repro: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    restore_sigpipe();
    // A re-exec'd worker (spawned by a master with REPRO_WORKER_CONNECT
    // set) must become that worker before anything else looks at argv.
    if repro::cluster::maybe_run_worker_from_env() {
        return ExitCode::SUCCESS;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("worker") {
        return run_worker(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        return run_trace(&args[1..]);
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("repro: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_defaults() {
        let o = parse_args(&args(&["in.fa"])).unwrap();
        assert_eq!(o.input, "in.fa");
        assert_eq!(o.tops, 10);
        assert_eq!(o.alphabet, Alphabet::Protein);
        assert_eq!(o.engine, Engine::Sequential);
    }

    #[test]
    fn parses_engines() {
        for (name, want) in [
            ("seq", Engine::Sequential),
            (
                "simd",
                Engine::SimdDispatch {
                    width: None,
                    path: None,
                },
            ),
            ("simd4", Engine::Simd(LaneWidth::X4)),
            ("simd8", Engine::Simd(LaneWidth::X8)),
            ("simd16", Engine::Simd(LaneWidth::X16)),
            (
                "simd-threads:3",
                Engine::SimdThreads {
                    threads: 3,
                    width: None,
                    path: None,
                },
            ),
            ("threads:3", Engine::Threads(3)),
            ("cluster:5", Engine::Cluster { workers: 5 }),
            (
                "hybrid:4:2",
                Engine::Hybrid {
                    nodes: 4,
                    threads_per_node: 2,
                },
            ),
            ("legacy", Engine::Legacy(LegacyKernel::Gotoh)),
            ("legacy-naive", Engine::Legacy(LegacyKernel::Naive)),
        ] {
            let o = parse_args(&args(&["--engine", name, "x.fa"])).unwrap();
            assert_eq!(o.engine, want, "{name}");
        }
    }

    #[test]
    fn parses_transport() {
        let o = parse_args(&args(&["x.fa"])).unwrap();
        assert_eq!(o.transport, Transport::Sim);
        let o = parse_args(&args(&[
            "--engine",
            "cluster:2",
            "--transport",
            "proc",
            "x.fa",
        ]))
        .unwrap();
        assert_eq!(o.transport, Transport::Proc);
        assert_eq!(o.engine, Engine::Cluster { workers: 2 });
        assert!(parse_args(&args(&["--transport", "pigeon", "x.fa"])).is_err());
        assert!(parse_args(&args(&["x.fa", "--transport"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--engine", "warp", "x.fa"])).is_err());
        assert!(parse_args(&args(&["--tops", "many", "x.fa"])).is_err());
        assert!(parse_args(&args(&["a.fa", "b.fa"])).is_err());
        assert!(parse_args(&args(&["--bogus", "x.fa"])).is_err());
    }

    #[test]
    fn lanes_and_dispatch_fold_into_the_engine() {
        let o = parse_args(&args(&[
            "--engine",
            "simd",
            "--lanes",
            "16",
            "--dispatch",
            "avx2",
            "x.fa",
        ]))
        .unwrap();
        assert_eq!(
            o.engine,
            Engine::SimdDispatch {
                width: Some(LaneWidth::X16),
                path: Some(DispatchPath::Avx2),
            }
        );
        // Flag order doesn't matter.
        let o = parse_args(&args(&[
            "--lanes",
            "8",
            "--engine",
            "simd-threads:2",
            "x.fa",
        ]))
        .unwrap();
        assert_eq!(
            o.engine,
            Engine::SimdThreads {
                threads: 2,
                width: Some(LaneWidth::X8),
                path: None,
            }
        );
        // "auto" is the explicit spelling of the default.
        let o = parse_args(&args(&["--engine", "simd", "--lanes", "auto", "x.fa"])).unwrap();
        assert_eq!(
            o.engine,
            Engine::SimdDispatch {
                width: None,
                path: None,
            }
        );
    }

    #[test]
    fn rejects_bad_lanes_and_dispatch() {
        let err = parse_args(&args(&["--engine", "simd", "--lanes", "32", "x.fa"])).unwrap_err();
        assert!(err.contains("unsupported lane width 32"), "{err}");
        assert!(parse_args(&args(&["--engine", "simd", "--lanes", "wide", "x.fa"])).is_err());
        assert!(parse_args(&args(&["--engine", "simd", "--dispatch", "mmx", "x.fa"])).is_err());
        // Kernel knobs demand a dispatch-capable engine.
        let err = parse_args(&args(&["--engine", "seq", "--lanes", "8", "x.fa"])).unwrap_err();
        assert!(err.contains("simd"), "{err}");
    }

    #[test]
    fn rejects_degenerate_engine_configs() {
        // Worlds too small to host a master + one worker must be a
        // parse-time diagnostic, not a panic deep in the engine.
        for spec in [
            "threads:0",
            "cluster:0",
            "hybrid:0:4",
            "hybrid:4:0",
            "hybrid:1:1",
        ] {
            let err = parse_args(&args(&["--engine", spec, "x.fa"])).unwrap_err();
            assert!(err.contains("needs"), "{spec}: {err}");
        }
    }

    #[test]
    fn parses_checkpoint_budget() {
        let o = parse_args(&args(&["x.fa"])).unwrap();
        assert_eq!(o.checkpoint_budget, None);
        let o = parse_args(&args(&["--checkpoint-budget", "1048576", "x.fa"])).unwrap();
        assert_eq!(o.checkpoint_budget, Some(1_048_576));
        let o = parse_args(&args(&["--checkpoint-budget", "0", "x.fa"])).unwrap();
        assert_eq!(o.checkpoint_budget, Some(0));
        assert!(parse_args(&args(&["--checkpoint-budget", "lots", "x.fa"])).is_err());
        assert!(parse_args(&args(&["x.fa", "--checkpoint-budget"])).is_err());
    }

    #[test]
    fn parses_prune_flags() {
        let o = parse_args(&args(&["x.fa"])).unwrap();
        assert!(!o.no_prune, "pruning defaults on");
        assert_eq!(o.seed_k, None);
        let o = parse_args(&args(&["--no-prune", "x.fa"])).unwrap();
        assert!(o.no_prune);
        let o = parse_args(&args(&["--seed-k", "4", "x.fa"])).unwrap();
        assert_eq!(o.seed_k, Some(4));
        let err = parse_args(&args(&["--seed-k", "0", "x.fa"])).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = parse_args(&args(&["--seed-k", "99", "x.fa"])).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        assert!(parse_args(&args(&["x.fa", "--seed-k"])).is_err());
    }

    #[test]
    fn pruned_and_unpruned_runs_agree_end_to_end() {
        let dir = std::env::temp_dir();
        let fasta = dir.join("repro_cli_prune_test.fa");
        let pruned_report = dir.join("repro_cli_prune_on.json");
        let plain_report = dir.join("repro_cli_prune_off.json");
        std::fs::write(&fasta, ">t\nATGCATGCATGCATGC\n").unwrap();
        let base = [
            "--alphabet",
            "dna",
            "--tops",
            "3",
            "--quiet",
            fasta.to_str().unwrap(),
        ];
        let mut on = vec!["--report", pruned_report.to_str().unwrap()];
        on.extend_from_slice(&base);
        let mut off = vec!["--no-prune", "--report", plain_report.to_str().unwrap()];
        off.extend_from_slice(&base);
        run(&parse_args(&args(&on)).unwrap()).unwrap();
        run(&parse_args(&args(&off)).unwrap()).unwrap();
        use repro::obs::json::Json;
        let read = |p: &std::path::Path| {
            Json::parse(&std::fs::read_to_string(p).unwrap()).unwrap()
        };
        let on_doc = read(&pruned_report);
        let off_doc = read(&plain_report);
        let tops = |d: &Json| {
            d.get("reports").and_then(Json::as_arr).unwrap()[0]
                .get("tops_found")
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(tops(&on_doc), tops(&off_doc));
        // The seeded run stamps its index build time; the plain run has
        // nothing seed-related.
        let build_ns = |d: &Json| {
            d.get("reports").and_then(Json::as_arr).unwrap()[0]
                .get("stats")
                .and_then(|s| s.get("seed_index_build_ns"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert!(build_ns(&on_doc) > 0);
        assert_eq!(build_ns(&off_doc), 0);
    }

    #[test]
    fn parses_report_and_trace_paths() {
        let o = parse_args(&args(&["--report", "r.json", "--trace", "t.jsonl", "x.fa"])).unwrap();
        assert_eq!(o.report.as_deref(), Some("r.json"));
        assert_eq!(o.trace.as_deref(), Some("t.jsonl"));
        assert!(parse_args(&args(&["--report"])).is_err());
        assert!(parse_args(&args(&["x.fa", "--trace"])).is_err());
    }

    #[test]
    fn report_and_trace_files_are_written_and_valid() {
        use repro::obs::json::Json;
        let dir = std::env::temp_dir();
        let fasta = dir.join("repro_cli_obs_test.fa");
        let report = dir.join("repro_cli_obs_test.json");
        let trace = dir.join("repro_cli_obs_test.jsonl");
        std::fs::write(&fasta, ">t\nATGCATGCATGCATGC\n").unwrap();
        let o = parse_args(&args(&[
            "--alphabet",
            "dna",
            "--tops",
            "3",
            "--engine",
            "cluster:2",
            "--quiet",
            "--report",
            report.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            fasta.to_str().unwrap(),
        ]))
        .unwrap();
        run(&o).unwrap();

        let doc = Json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        let reports = doc.get("reports").and_then(Json::as_arr).unwrap();
        assert_eq!(reports.len(), 1);
        repro::RunReport::validate(&reports[0]).unwrap();

        // The cluster engine emits assign/result/done events; every line
        // of the trace must be a standalone JSON object.
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(
            trace_text.lines().count() >= 2,
            "trace too short:\n{trace_text}"
        );
        for line in trace_text.lines() {
            Json::parse(line).unwrap();
        }
    }

    #[test]
    fn parses_progress_and_chrome_paths() {
        let o = parse_args(&args(&["--progress", "-", "x.fa"])).unwrap();
        assert_eq!(o.progress.as_deref(), Some("-"));
        let o = parse_args(&args(&["--progress", "p.jsonl", "--chrome", "t.json", "x.fa"]))
            .unwrap();
        assert_eq!(o.progress.as_deref(), Some("p.jsonl"));
        assert_eq!(o.chrome.as_deref(), Some("t.json"));
        assert!(parse_args(&args(&["x.fa", "--progress"])).is_err());
        assert!(parse_args(&args(&["x.fa", "--chrome"])).is_err());
    }

    #[test]
    fn progress_file_streams_heartbeats_ending_in_the_final_line() {
        use repro::obs::json::Json;
        let dir = std::env::temp_dir();
        let fasta = dir.join("repro_cli_progress_test.fa");
        let progress = dir.join("repro_cli_progress_test.jsonl");
        std::fs::write(&fasta, ">t\nATGCATGCATGCATGC\n").unwrap();
        let o = parse_args(&args(&[
            "--alphabet",
            "dna",
            "--tops",
            "3",
            "--quiet",
            "--progress",
            progress.to_str().unwrap(),
            fasta.to_str().unwrap(),
        ]))
        .unwrap();
        run(&o).unwrap();
        let text = std::fs::read_to_string(&progress).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "no heartbeats written");
        for line in &lines {
            Json::parse(line).unwrap();
        }
        // The forced end-of-run line reports a finished search.
        let last = Json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("tops_found").and_then(Json::as_u64), Some(3));
        assert!(matches!(last.get("eta_secs"), Some(Json::Null)));
    }

    #[test]
    fn chrome_trace_file_is_written_with_worker_spans() {
        use repro::obs::json::Json;
        let dir = std::env::temp_dir();
        let fasta = dir.join("repro_cli_chrome_test.fa");
        let chrome = dir.join("repro_cli_chrome_test.json");
        std::fs::write(&fasta, ">t\nATGCATGCATGCATGC\n").unwrap();
        let o = parse_args(&args(&[
            "--alphabet",
            "dna",
            "--tops",
            "3",
            "--engine",
            "cluster:2",
            "--quiet",
            "--chrome",
            chrome.to_str().unwrap(),
            fasta.to_str().unwrap(),
        ]))
        .unwrap();
        run(&o).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Phase spans plus at least one worker task span (the chrome
        // flag forces event capture even without --trace).
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("tid").and_then(Json::as_u64) == Some(0)
        }));
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("tid").and_then(Json::as_u64).unwrap_or(0) >= 1
        }));
    }

    #[test]
    fn chrome_export_rejects_multi_record_input() {
        let dir = std::env::temp_dir();
        let fasta = dir.join("repro_cli_chrome_multi_test.fa");
        let chrome = dir.join("repro_cli_chrome_multi_test.json");
        std::fs::write(&fasta, ">a\nATGCATGC\n>b\nATGCATGC\n").unwrap();
        let o = parse_args(&args(&[
            "--alphabet",
            "dna",
            "--quiet",
            "--chrome",
            chrome.to_str().unwrap(),
            fasta.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run(&o).unwrap_err();
        assert!(err.contains("2 records"), "{err}");
    }

    #[test]
    fn scoring_defaults_per_alphabet() {
        let dna = parse_args(&args(&["--alphabet", "dna", "x.fa"])).unwrap();
        let s = build_scoring(&dna).unwrap();
        assert_eq!(s.gaps.open, 2);
        let prot = parse_args(&args(&["x.fa"])).unwrap();
        let s = build_scoring(&prot).unwrap();
        assert_eq!(s.gaps.open, 10);
        assert_eq!(s.exchange.max_score(), 11); // BLOSUM62's W/W
    }

    #[test]
    fn custom_simple_matrix() {
        let o = parse_args(&args(&[
            "--alphabet",
            "dna",
            "--match",
            "5",
            "--mismatch",
            "-4",
            "--open",
            "3",
            "--extend",
            "2",
            "x.fa",
        ]))
        .unwrap();
        let s = build_scoring(&o).unwrap();
        assert_eq!(s.exchange.max_score(), 5);
        assert_eq!(s.gaps.cost(2), 7);
    }
}
