//! Property tests for seed-bound admissibility (ISSUE 7 satellite):
//! the per-split bound from the triangular self-sweep must dominate the
//! exact `align_task` score for random sequences, scorings, and
//! override triangles — including bounds recomputed after accepts —
//! and seeded pruning must never change the finder's output.

use proptest::prelude::*;
use repro_align::{sw_last_row, Alphabet, ExchangeMatrix, GapPenalties, Scoring, Seq};
use repro_core::seed::{SeedConfig, SplitBounds};
use repro_core::{
    align_task, find_top_alignments, FinderConfig, OverrideTriangle, SplitMask,
    TopAlignmentFinder,
};

fn arb_dna(max: usize) -> impl Strategy<Value = Seq> {
    prop::collection::vec(0u8..4, 0..=max).prop_map(|codes| Seq::from_codes(Alphabet::Dna, codes))
}

fn arb_scoring() -> impl Strategy<Value = Scoring> {
    (1i32..=4, -4i32..=0, 0i32..=4, 1i32..=3).prop_map(|(mat, mis, open, ext)| {
        Scoring::new(
            ExchangeMatrix::match_mismatch(Alphabet::Dna, mat, mis),
            GapPenalties::new(open, ext),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Freshly built bounds dominate the exact first-pass score of
    /// every split, for arbitrary sequences and scoring models.
    #[test]
    fn bound_dominates_exact_score_on_empty_triangle(
        seq in arb_dna(48),
        scoring in arb_scoring(),
        k in 2usize..8,
    ) {
        let bounds = SplitBounds::build(seq.codes(), &scoring, SeedConfig::new(k));
        let triangle = OverrideTriangle::new(seq.len());
        for r in 1..seq.len() {
            let exact = align_task(&seq, &scoring, r, &triangle, None, None);
            prop_assert!(
                bounds.bound(r) >= exact.score,
                "split {}: bound {} < exact {} on {}",
                r, bounds.bound(r), exact.score, seq
            );
        }
    }

    /// After every real accept (override triangles grown by genuine
    /// top-alignment pair lists), the recomputed bounds still dominate
    /// the exact masked score of every split, and never increase.
    #[test]
    fn recomputed_bounds_stay_admissible_after_accepts(
        seq in arb_dna(40),
        scoring in arb_scoring(),
    ) {
        let tops = find_top_alignments(&seq, &scoring, 4);
        let mut triangle = OverrideTriangle::new(seq.len());
        let mut bounds = SplitBounds::build(seq.codes(), &scoring, SeedConfig::default());
        for top in &tops.alignments {
            let before: Vec<_> = bounds.bounds().to_vec();
            for &(p, q) in &top.pairs {
                triangle.set(p, q);
            }
            let dirty_row = top.pairs.iter().map(|&(p, _)| p).min().unwrap();
            bounds.recompute(seq.codes(), &scoring, &triangle, dirty_row);
            for (r, &prev) in before.iter().enumerate().skip(1) {
                prop_assert!(
                    bounds.bound(r) <= prev,
                    "split {}: bound rose under a grown mask", r
                );
                let (prefix, suffix) = seq.split(r);
                let exact = sw_last_row(prefix, suffix, &scoring, SplitMask::new(&triangle, r));
                prop_assert!(
                    bounds.bound(r) >= exact.best,
                    "split {}: recomputed bound {} < masked exact {} on {}",
                    r, bounds.bound(r), exact.best, seq
                );
            }
        }
    }

    /// The seeded finder produces bit-identical top alignments to the
    /// unpruned finder on arbitrary inputs, counts, and k-mer widths.
    #[test]
    fn seeded_finder_output_matches_unpruned(
        seq in arb_dna(36),
        scoring in arb_scoring(),
        count in 1usize..6,
        k in 2usize..8,
    ) {
        let base = find_top_alignments(&seq, &scoring, count);
        let cfg = FinderConfig::seeded(count, SeedConfig::new(k));
        let pruned = TopAlignmentFinder::new(&seq, &scoring, cfg).run();
        prop_assert_eq!(&base.alignments, &pruned.alignments, "k {} on {}", k, seq);
        prop_assert_eq!(&base.triangle, &pruned.triangle);
    }
}
