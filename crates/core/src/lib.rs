//! # repro-core — the paper's `O(n³)` top-alignment algorithm
//!
//! This crate implements Section 3 and Appendix A of Romein, Heringa &
//! Bal (SC 2003): finding a user-defined number of **nonoverlapping top
//! alignments** of a sequence against itself, the computation that
//! dominates the Repro internal-repeat method.
//!
//! * [`triangle`] — the **override triangle**: a packed bit-triangle over
//!   residue-position pairs recording which pairs already belong to a top
//!   alignment; realignments force those cells to zero.
//! * [`bottom`] — the **bottom-row store**: the first-pass (empty-triangle)
//!   bottom row of every split matrix, kept for shadow-alignment rejection
//!   (the largest data structure, `m(m−1)/2` scores, exactly as App. A).
//! * [`split_mask`] — adapts the triangle to the kernel-level
//!   [`repro_align::CellMask`] for a given split.
//! * [`tasks`] — the best-first task queue of Figure 5: one task per
//!   split, ordered by (upper-bound) score, with the `AlignedWithTopNum`
//!   freshness stamp.
//! * [`finder`] — [`finder::TopAlignmentFinder`], the sequential driver,
//!   plus the task-alignment primitive shared with the parallel engines.
//! * [`dirty`] — per-accept **dirty bounds**: for each split, where the
//!   newly overridden pairs can first perturb the DP matrix.
//! * [`seed`] — seeded split pruning: a k-mer/diagonal index plus
//!   admissible per-split score bounds from one triangular self-sweep,
//!   so seedless splits are never aligned at all.
//! * [`incremental`] — the checkpointed incremental realignment layer:
//!   budget-capped DP-row snapshots plus sweep memoisation, resuming
//!   realignments below the dirty boundary (bit-identical by
//!   construction).
//! * [`stats`] — work accounting (alignments, cells, realignment rates:
//!   the quantities behind the paper's "90–97 % fewer realignments" and
//!   "3–10 % need realignment" claims).
//! * [`mod@delineate`] — repeat delineation from top alignments (the second
//!   half of the Repro method; the paper defers it to future work, we
//!   provide a working implementation).

#![warn(missing_docs)]

pub mod bottom;
pub mod consensus;
pub mod delineate;
pub mod dirty;
pub mod finder;
pub mod incremental;
pub mod seed;
pub mod split_mask;
pub mod stats;
pub mod tasks;
pub mod triangle;

pub use bottom::{best_valid_entry_counted, BottomRowStore};
pub use consensus::{unit_consensus, Consensus};
pub use delineate::{delineate, RepeatReport, RepeatUnit};
pub use dirty::DirtyLog;
pub use finder::{
    accept_task, accept_task_with_row, align_task, find_top_alignments,
    find_top_alignments_recorded, FinderConfig, RowMode, Step, TaskResult, TopAlignment,
    TopAlignmentFinder, TopAlignments,
};
pub use incremental::{IncrementalSweep, IncrementalSweeper};
pub use seed::{PairMask, SeedConfig, SeedIndex, SplitBounds};
pub use split_mask::SplitMask;
pub use stats::Stats;
pub use tasks::{Task, TaskQueue, NEVER_ALIGNED, SCORE_INFINITY};
pub use triangle::OverrideTriangle;
