//! The bottom-row store (paper Appendix A).
//!
//! After a split matrix is aligned for the *first* time — necessarily
//! with an empty override triangle, since every task is aligned once
//! before the first top alignment can be accepted — its bottom row is
//! stored. Later realignments compare their bottom row entry-by-entry
//! against the stored one: an entry that changed marks a **shadow
//! alignment** (artificially rerouted around overridden cells) and is an
//! invalid top-alignment end point.
//!
//! Split `r` (1-based, `1 ≤ r ≤ m−1`) has a bottom row of `m − r`
//! scores; all rows together form a triangle of `m(m−1)/2` scores — the
//! algorithm's largest data structure.

use repro_align::Score;

/// Triangular store of first-pass bottom rows, one per split.
#[derive(Debug, Clone)]
pub struct BottomRowStore {
    m: usize,
    /// Flat storage; row of split `r` occupies `offset(r) .. offset(r)+m−r`.
    data: Vec<Score>,
    /// Which rows have been stored.
    present: Vec<bool>,
}

impl BottomRowStore {
    /// An empty store for a sequence of length `m`.
    pub fn new(m: usize) -> Self {
        let total = m * m.saturating_sub(1) / 2;
        BottomRowStore {
            m,
            data: vec![0; total],
            present: vec![false; m],
        }
    }

    #[inline]
    fn offset(&self, r: usize) -> usize {
        debug_assert!((1..self.m).contains(&r), "split {r} out of range");
        // Rows for splits 1..r stacked: lengths (m−1) + (m−2) + ... + (m−r+1).
        (r - 1) * self.m - (r - 1) * r / 2
    }

    /// Row length for split `r`.
    #[inline]
    pub fn row_len(&self, r: usize) -> usize {
        self.m - r
    }

    /// Store the first-pass bottom row for split `r`.
    ///
    /// # Panics
    /// Panics if the row was already stored (first-pass rows are immutable;
    /// storing twice indicates a scheduling bug) or has the wrong length.
    pub fn store(&mut self, r: usize, row: &[Score]) {
        assert!(!self.present[r], "bottom row for split {r} stored twice");
        assert_eq!(row.len(), self.row_len(r), "bottom row length mismatch");
        let o = self.offset(r);
        self.data[o..o + row.len()].copy_from_slice(row);
        self.present[r] = true;
    }

    /// The stored row for split `r`, or `None` if not yet stored.
    pub fn get(&self, r: usize) -> Option<&[Score]> {
        if self.present[r] {
            let o = self.offset(r);
            Some(&self.data[o..o + self.row_len(r)])
        } else {
            None
        }
    }

    /// `true` iff split `r`'s first-pass row has been stored.
    #[inline]
    pub fn contains(&self, r: usize) -> bool {
        self.present[r]
    }

    /// Number of rows stored so far.
    pub fn stored_rows(&self) -> usize {
        self.present.iter().filter(|&&p| p).count()
    }

    /// Total scores held when full (the `m(m−1)/2` of Appendix A).
    pub fn capacity_scores(&self) -> usize {
        self.data.len()
    }
}

/// Shadow filter: the best *valid* bottom-row entry of a realignment.
///
/// `current` is the freshly computed bottom row under the active override
/// triangle; `original` is the stored first-pass row. Valid end points are
/// the positions where both agree (paper App. A); returns the best valid
/// score and its (leftmost) column, or `(0, None)` when every positive
/// entry is shadowed.
pub fn best_valid_entry(current: &[Score], original: &[Score]) -> (Score, Option<usize>) {
    let (best, col, _) = best_valid_entry_counted(current, original);
    (best, col)
}

/// [`best_valid_entry`] that also counts the shadow rejections: the
/// number of positions where the realigned row disagrees with the
/// stored first-pass row. The count feeds
/// [`crate::Stats::shadow_rejections`].
pub fn best_valid_entry_counted(
    current: &[Score],
    original: &[Score],
) -> (Score, Option<usize>, u64) {
    debug_assert_eq!(current.len(), original.len());
    let mut best = 0;
    let mut col = None;
    let mut shadows = 0u64;
    for (x, (&c, &o)) in current.iter().zip(original).enumerate() {
        if c == o {
            if c > best {
                best = c;
                col = Some(x);
            }
        } else {
            shadows += 1;
        }
    }
    (best, col, shadows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_tile_the_triangle_exactly() {
        let m = 13;
        let store = BottomRowStore::new(m);
        let mut expected = 0;
        for r in 1..m {
            assert_eq!(store.offset(r), expected);
            expected += store.row_len(r);
        }
        assert_eq!(expected, store.capacity_scores());
        assert_eq!(expected, m * (m - 1) / 2);
    }

    #[test]
    fn store_and_get_roundtrip() {
        let mut store = BottomRowStore::new(6);
        store.store(2, &[5, 0, 3, 9]);
        store.store(5, &[7]);
        assert_eq!(store.get(2), Some(&[5, 0, 3, 9][..]));
        assert_eq!(store.get(5), Some(&[7][..]));
        assert_eq!(store.get(3), None);
        assert_eq!(store.stored_rows(), 2);
        assert!(store.contains(2) && !store.contains(4));
    }

    #[test]
    fn adjacent_rows_do_not_clobber() {
        let m = 8;
        let mut store = BottomRowStore::new(m);
        for r in 1..m {
            let row: Vec<Score> = (0..store.row_len(r))
                .map(|x| (r * 100 + x) as Score)
                .collect();
            store.store(r, &row);
        }
        for r in 1..m {
            let row = store.get(r).unwrap();
            for (x, &v) in row.iter().enumerate() {
                assert_eq!(v, (r * 100 + x) as Score);
            }
        }
    }

    #[test]
    #[should_panic(expected = "stored twice")]
    fn double_store_panics() {
        let mut store = BottomRowStore::new(4);
        store.store(1, &[1, 2, 3]);
        store.store(1, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let mut store = BottomRowStore::new(4);
        store.store(1, &[1]);
    }

    #[test]
    fn best_valid_entry_filters_shadows() {
        let original = [3, 9, 7, 0, 5];
        // Entry 1 dropped (shadow), entry 2 unchanged, entry 4 unchanged.
        let current = [3, 4, 7, 0, 5];
        let (score, col) = best_valid_entry(&current, &original);
        assert_eq!(score, 7);
        assert_eq!(col, Some(2));
    }

    #[test]
    fn counted_variant_tallies_disagreements() {
        let original = [3, 9, 7, 0, 5];
        let current = [3, 4, 7, 1, 5];
        let (score, col, shadows) = best_valid_entry_counted(&current, &original);
        assert_eq!((score, col), (7, Some(2)));
        assert_eq!(shadows, 2);
    }

    #[test]
    fn best_valid_entry_all_shadowed() {
        let original = [5, 6];
        let current = [4, 5];
        assert_eq!(best_valid_entry(&current, &original), (0, None));
    }

    #[test]
    fn best_valid_entry_prefers_leftmost_tie() {
        let original = [7, 1, 7];
        let current = [7, 0, 7];
        let (score, col) = best_valid_entry(&current, &original);
        assert_eq!((score, col), (7, Some(0)));
    }
}
