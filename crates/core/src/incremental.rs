//! The checkpointed incremental sweeper.
//!
//! [`IncrementalSweeper`] wraps the scalar score-only sweep with three
//! exact shortcuts, all driven by the [`crate::DirtyLog`]:
//!
//! 1. **Full skip** — if no pair accepted since the split's previous
//!    sweep straddles it, the whole matrix (and therefore the sweep's
//!    result) is unchanged: replay the memoised `(score, col, shadows)`
//!    without touching a single cell.
//! 2. **Checkpoint resume** — otherwise, resume from the deepest stored
//!    [`Checkpoint`] whose prefix rows are still clean, sweeping only
//!    `rows − checkpoint.row` rows. Checkpoints are captured during
//!    every sweep at positions adapted to the swept region and held
//!    under a global byte budget with queue-priority eviction.
//! 3. **Scratch pool** — all row buffers are recycled, so steady-state
//!    realignments perform no allocation.
//!
//! A miss (no memo, no valid checkpoint, or budget 0) falls back to the
//! full sweep, so results are always bit-identical to from-scratch
//! computation — the engines' equality tests difference the two paths
//! directly.

use crate::dirty::DirtyLog;
use crate::finder::TaskResult;
use crate::split_mask::SplitMask;
use crate::triangle::OverrideTriangle;
use repro_align::checkpoint::{Checkpoint, CheckpointStore, ScratchPool};
use repro_align::{sw_last_row_resume, NoMask, Score, Scoring, Seq, NEG_INF};
use std::collections::HashMap;

/// Result of the previous sweep of one split, replayed verbatim on a
/// full skip. Valid exactly while the dirty log reports no straddling
/// pair since `version`.
#[derive(Debug, Clone)]
struct SweepMemo {
    /// Dirty-log version of the triangle the sweep ran under.
    version: u64,
    score: Score,
    col: Option<usize>,
    shadows: u64,
}

/// What an incremental sweep did, alongside the ordinary [`TaskResult`].
#[derive(Debug)]
pub struct IncrementalSweep {
    /// The sweep outcome, exactly as [`crate::align_task`] would report.
    pub result: TaskResult,
    /// `true` if the whole sweep was served from the memo (zero rows).
    pub full_skip: bool,
    /// Row the DP resumed from (`0` = swept from scratch).
    pub resumed_at: usize,
    /// Rows actually swept.
    pub rows_swept: u64,
    /// Rows skipped (memo or checkpoint).
    pub rows_skipped: u64,
}

impl IncrementalSweep {
    /// Did a checkpoint or memo shortcut fire?
    pub fn hit(&self) -> bool {
        self.full_skip || self.resumed_at > 0
    }
}

/// Per-engine (or per-worker) incremental realignment state: checkpoint
/// store, sweep memos, and the scratch-buffer pool.
///
/// One sweeper serves one triangle replica: the `version` stamps passed
/// in must count the accepts applied to the triangle the sweeps run
/// under, and the [`DirtyLog`] must contain at least those accepts.
#[derive(Debug)]
pub struct IncrementalSweeper {
    store: CheckpointStore,
    pool: ScratchPool,
    memo: HashMap<usize, SweepMemo>,
}

/// Checkpoint capture boundaries for a sweep of `start..rows`: an even
/// sixteenth-grid over the swept region, adapted to wherever this sweep
/// actually started. A resume lands on the deepest boundary at or above
/// which every row is clean, so a denser grid loses fewer rows to
/// rounding — the copies are two `memcpy`s per boundary, far below the
/// DP cost of the rows they let a later sweep skip.
fn capture_rows(start: usize, rows: usize) -> Vec<usize> {
    let len = rows - start;
    let mut out: Vec<usize> = (1..16)
        .map(|k| start + k * len / 16)
        .filter(|&c| c > start && c < rows)
        .collect();
    out.dedup();
    out
}

/// Checkpoints kept per split at most; beyond this the shallowest are
/// dropped first (deep checkpoints skip more rows when they survive).
const MAX_CKPTS_PER_SPLIT: usize = 24;

impl IncrementalSweeper {
    /// A sweeper with the given global checkpoint byte budget. Budget 0
    /// is the degenerate enabled-but-empty configuration: every sweep
    /// runs from scratch and counts as a miss.
    pub fn new(budget: usize) -> Self {
        IncrementalSweeper {
            store: CheckpointStore::new(budget),
            pool: ScratchPool::new(),
            memo: HashMap::new(),
        }
    }

    /// Buffers served from the pool instead of the allocator.
    pub fn pool_reuses(&self) -> u64 {
        self.pool.reuses()
    }

    /// Bytes currently pinned by stored checkpoints.
    pub fn store_used_bytes(&self) -> usize {
        self.store.used_bytes()
    }

    /// Return a spent row buffer (e.g. a first-pass bottom row after it
    /// has been copied into the bottom-row store) to the pool.
    pub fn reclaim(&mut self, buf: Vec<Score>) {
        self.pool.give(buf);
    }

    /// First (empty-triangle) sweep of split `r`: always sweeps every
    /// row, but seeds the memo and captures checkpoints so later
    /// realignments can resume. Returns the ordinary first-pass
    /// [`TaskResult`] (with the bottom row attached for storage).
    pub fn first_pass(
        &mut self,
        seq: &Seq,
        scoring: &Scoring,
        r: usize,
        triangle: &OverrideTriangle,
        version: u64,
    ) -> TaskResult {
        debug_assert!(
            triangle.is_empty(),
            "first pass of split {r} must see an empty triangle"
        );
        let (best, col, row, cells, merged) = self.sweep(seq, scoring, r, triangle, version);
        // Store under the swept score: it is the bound the queue
        // reinserts this split with, so eviction order tracks pop order
        // — the splits realigned soonest keep their checkpoints.
        self.store.put_split(r, best, merged);
        self.memo.insert(
            r,
            SweepMemo {
                version,
                score: best,
                col,
                shadows: 0,
            },
        );
        TaskResult {
            score: best,
            col,
            cells,
            first_row: Some(row),
            shadow_rejections: 0,
        }
    }

    /// Incremental realignment of split `r` under `triangle` (whose
    /// accept count is `version`), shadow-filtered against `original`.
    ///
    /// Bit-identical to
    /// `align_task(seq, scoring, r, triangle, Some(original), None)`,
    /// but skipping every row the dirty log proves unchanged.
    #[allow(clippy::too_many_arguments)] // the engines thread all of this anyway
    pub fn realign(
        &mut self,
        seq: &Seq,
        scoring: &Scoring,
        r: usize,
        triangle: &OverrideTriangle,
        original: &[Score],
        dirty: &DirtyLog,
        version: u64,
    ) -> IncrementalSweep {
        let rows = r;
        let enabled = self.store.budget() > 0;

        // Shortcut 1: nothing straddling r changed since our last sweep
        // — the matrix, and thus the result, is identical.
        if enabled {
            if let Some(memo) = self.memo.get_mut(&r) {
                if dirty.dirty_row(r, memo.version).is_none() {
                    memo.version = version;
                    let result = TaskResult {
                        score: memo.score,
                        col: memo.col,
                        cells: 0,
                        first_row: None,
                        shadow_rejections: memo.shadows,
                    };
                    return IncrementalSweep {
                        result,
                        full_skip: true,
                        resumed_at: 0,
                        rows_swept: 0,
                        rows_skipped: rows as u64,
                    };
                }
            }
        }

        // Shortcut 2: resume from the deepest still-valid checkpoint.
        let mut kept: Vec<Checkpoint> = Vec::new();
        let mut start = 0usize;
        if enabled {
            for ckpt in self.store.take_split(r) {
                let valid = dirty.dirty_row(r, ckpt.stamp).is_none_or(|d| d >= ckpt.row);
                if valid {
                    start = start.max(ckpt.row);
                    kept.push(ckpt);
                } else {
                    self.pool.give(ckpt.m);
                    self.pool.give(ckpt.maxy);
                }
            }
        }

        // The dirty frontier: the first row any accept so far has
        // touched for this split. Rows above it have never changed, and
        // workloads whose repeats cluster (the common case — accepts
        // overlap the same region) keep dirtying at or below it, so a
        // checkpoint captured exactly there is both the deepest state
        // the next realignment can reuse and the one most likely to
        // survive future accepts.
        let frontier = dirty.dirty_row(r, 0);

        let resumed_at = start;
        let (score, col, row, cells, shadows_swept, merged) = if start > 0 {
            let seed = kept
                .iter()
                .find(|c| c.row == start)
                .expect("start came from a kept checkpoint");
            let mut m = self.pool.take(seed.m.len(), 0);
            m.copy_from_slice(&seed.m);
            let mut maxy = self.pool.take(seed.maxy.len(), 0);
            maxy.copy_from_slice(&seed.maxy);
            let out = self.sweep_from(
                seq, scoring, r, triangle, version, start, m, maxy, kept, frontier,
            );
            let (s, c, sh) = best_valid(&out.0, original);
            (s, c, out.0, out.1, sh, out.2)
        } else {
            let out = self.sweep_with_kept(seq, scoring, r, triangle, version, kept, frontier);
            let (s, c, sh) = best_valid(&out.0, original);
            (s, c, out.0, out.1, sh, out.2)
        };

        if enabled {
            // Store under the shadow-filtered score — the bound this
            // split re-enters the queue with (see `first_pass`).
            self.store.put_split(r, score, merged);
            self.memo.insert(
                r,
                SweepMemo {
                    version,
                    score,
                    col,
                    shadows: shadows_swept,
                },
            );
        }
        self.pool.give(row);

        IncrementalSweep {
            result: TaskResult {
                score,
                col,
                cells,
                first_row: None,
                shadow_rejections: shadows_swept,
            },
            full_skip: false,
            resumed_at,
            rows_swept: (rows - resumed_at) as u64,
            rows_skipped: resumed_at as u64,
        }
    }

    /// Full sweep from row 0 with fresh state (wrapper keeping the
    /// first-pass path simple). Returns (score, col, bottom row, cells,
    /// merged checkpoint set to store).
    #[allow(clippy::type_complexity)]
    fn sweep(
        &mut self,
        seq: &Seq,
        scoring: &Scoring,
        r: usize,
        triangle: &OverrideTriangle,
        version: u64,
    ) -> (Score, Option<usize>, Vec<Score>, u64, Vec<Checkpoint>) {
        let (row, cells, merged) =
            self.sweep_with_kept(seq, scoring, r, triangle, version, Vec::new(), None);
        let mut best = 0;
        let mut col = None;
        for (x, &v) in row.iter().enumerate() {
            if v > best {
                best = v;
                col = Some(x);
            }
        }
        (best, col, row, cells, merged)
    }

    #[allow(clippy::too_many_arguments)]
    fn sweep_with_kept(
        &mut self,
        seq: &Seq,
        scoring: &Scoring,
        r: usize,
        triangle: &OverrideTriangle,
        version: u64,
        kept: Vec<Checkpoint>,
        frontier: Option<usize>,
    ) -> (Vec<Score>, u64, Vec<Checkpoint>) {
        let cols = seq.len() - r;
        let m = self.pool.take(cols, 0);
        let maxy = self.pool.take(cols, NEG_INF);
        self.sweep_from(
            seq, scoring, r, triangle, version, 0, m, maxy, kept, frontier,
        )
    }

    /// The one real sweep: resume at `start` with state `(m, maxy)`,
    /// capture fresh checkpoints, and merge them with the surviving old
    /// ones. Returns (bottom row, cells swept, merged checkpoint set);
    /// the caller stores the set under the post-sweep score so eviction
    /// order tracks the queue's pop order.
    #[allow(clippy::too_many_arguments)]
    fn sweep_from(
        &mut self,
        seq: &Seq,
        scoring: &Scoring,
        r: usize,
        triangle: &OverrideTriangle,
        version: u64,
        start: usize,
        m: Vec<Score>,
        mut maxy: Vec<Score>,
        mut kept: Vec<Checkpoint>,
        frontier: Option<usize>,
    ) -> (Vec<Score>, u64, Vec<Checkpoint>) {
        let rows = r;
        let (prefix, suffix) = seq.split(r);
        let enabled = self.store.budget() > 0;
        let captures = if enabled {
            let mut c = capture_rows(start, rows);
            if let Some(f) = frontier {
                if f > start && f < rows {
                    if let Err(at) = c.binary_search(&f) {
                        c.insert(at, f);
                    }
                }
            }
            c
        } else {
            Vec::new()
        };
        let mut fresh: Vec<Checkpoint> = Vec::new();
        {
            let pool = &mut self.pool;
            let mut capture = |row: usize, m: &[Score], my: &[Score]| {
                let mut cm = pool.take(m.len(), 0);
                cm.copy_from_slice(m);
                let mut cy = pool.take(my.len(), 0);
                cy.copy_from_slice(my);
                fresh.push(Checkpoint {
                    row,
                    stamp: version,
                    m: cm,
                    maxy: cy,
                });
            };
            // An empty triangle masks nothing: use the zero-cost mask,
            // exactly as the plain first-pass path does.
            let last = if triangle.is_empty() {
                sw_last_row_resume(
                    prefix,
                    suffix,
                    scoring,
                    NoMask,
                    start,
                    m,
                    &mut maxy,
                    &captures,
                    &mut capture,
                )
            } else {
                sw_last_row_resume(
                    prefix,
                    suffix,
                    scoring,
                    SplitMask::new(triangle, r),
                    start,
                    m,
                    &mut maxy,
                    &captures,
                    &mut capture,
                )
            };
            self.pool.give(maxy);
            let merged = if enabled {
                // Merge: surviving old checkpoints + fresh captures,
                // deduplicated by row (equal rows hold equal state).
                kept.extend(fresh);
                kept.sort_by_key(|c| c.row);
                let mut merged: Vec<Checkpoint> = Vec::with_capacity(kept.len());
                for c in kept {
                    if merged.last().is_some_and(|p| p.row == c.row) {
                        self.pool.give(c.m);
                        self.pool.give(c.maxy);
                    } else {
                        merged.push(c);
                    }
                }
                while merged.len() > MAX_CKPTS_PER_SPLIT {
                    let c = merged.remove(0);
                    self.pool.give(c.m);
                    self.pool.give(c.maxy);
                }
                merged
            } else {
                Vec::new()
            };
            (last.row, last.cells, merged)
        }
    }
}

/// `best_valid_entry_counted` shadowing, local to keep imports tight.
fn best_valid(current: &[Score], original: &[Score]) -> (Score, Option<usize>, u64) {
    crate::bottom::best_valid_entry_counted(current, original)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finder::align_task;
    use repro_align::Seq;

    fn dna(text: &str) -> Seq {
        Seq::dna(text).unwrap()
    }

    /// Drive a sweeper and a from-scratch oracle through the same accept
    /// schedule; every realignment must agree bit-for-bit.
    #[test]
    fn incremental_matches_from_scratch_under_growing_triangle() {
        let seq = dna(&"ATGCATGCATGC".repeat(3));
        let scoring = Scoring::dna_example();
        let m = seq.len();
        for budget in [0usize, 512, 1 << 20] {
            let mut sweeper = IncrementalSweeper::new(budget);
            let mut triangle = OverrideTriangle::new(m);
            let mut dirty = DirtyLog::new();
            // First passes for a handful of splits.
            let splits = [4usize, 8, 12, 18, 24, 30];
            let mut originals = std::collections::HashMap::new();
            for &r in &splits {
                let res = sweeper.first_pass(&seq, &scoring, r, &triangle, 0);
                let oracle = align_task(&seq, &scoring, r, &triangle, None, None);
                assert_eq!(res.score, oracle.score, "budget {budget} first pass r={r}");
                assert_eq!(res.first_row, oracle.first_row);
                originals.insert(r, res.first_row.unwrap());
            }
            // Synthetic accepts, then realign every split after each.
            let accepts: Vec<Vec<(usize, usize)>> = vec![
                vec![(0, 4), (1, 5), (2, 6), (3, 7)],
                vec![(8, 20), (9, 21), (10, 22)],
                vec![(30, 33), (31, 34)],
            ];
            for pairs in &accepts {
                for &(p, q) in pairs {
                    triangle.set(p, q);
                }
                dirty.record_accept(pairs);
                let v = dirty.version();
                for &r in &splits {
                    let orig = &originals[&r];
                    let inc = sweeper.realign(&seq, &scoring, r, &triangle, orig, &dirty, v);
                    let oracle = align_task(&seq, &scoring, r, &triangle, Some(orig), None);
                    assert_eq!(
                        (
                            inc.result.score,
                            inc.result.col,
                            inc.result.shadow_rejections
                        ),
                        (oracle.score, oracle.col, oracle.shadow_rejections),
                        "budget {budget} version {v} split {r}"
                    );
                    if budget == 0 {
                        assert!(!inc.hit(), "budget 0 must always miss");
                        assert_eq!(inc.rows_skipped, 0);
                    }
                    assert_eq!(inc.rows_swept + inc.rows_skipped, r as u64);
                }
            }
            if budget > 0 {
                assert!(sweeper.pool_reuses() > 0, "pool must recycle buffers");
            }
        }
    }

    /// A split no accept straddles is served entirely from the memo.
    #[test]
    fn untouched_split_full_skips() {
        let seq = dna("ATGCATGCATGCATGC");
        let scoring = Scoring::dna_example();
        let mut sweeper = IncrementalSweeper::new(1 << 20);
        let mut triangle = OverrideTriangle::new(seq.len());
        let mut dirty = DirtyLog::new();
        let first = sweeper.first_pass(&seq, &scoring, 4, &triangle, 0);
        let orig = first.first_row.unwrap();
        // Accept far away: pairs entirely above split 4? No — straddles
        // need p < 4 ≤ q. Use p ≥ 4 so split 4 stays clean.
        triangle.set(8, 12);
        dirty.record_accept(&[(8, 12)]);
        let inc = sweeper.realign(&seq, &scoring, 4, &triangle, &orig, &dirty, 1);
        assert!(inc.full_skip);
        assert_eq!(inc.result.cells, 0);
        assert_eq!(inc.rows_skipped, 4);
        let oracle = align_task(&seq, &scoring, 4, &triangle, Some(&orig), None);
        assert_eq!(inc.result.score, oracle.score);
        assert_eq!(inc.result.shadow_rejections, oracle.shadow_rejections);
    }

    /// Deep splits resume from a checkpoint instead of row 0 when the
    /// dirty region starts low in the matrix.
    #[test]
    fn dirty_tail_resumes_from_a_checkpoint() {
        let seq = dna(&"ACGT".repeat(16)); // 64 residues
        let scoring = Scoring::dna_example();
        let mut sweeper = IncrementalSweeper::new(1 << 20);
        let mut triangle = OverrideTriangle::new(seq.len());
        let mut dirty = DirtyLog::new();
        let r = 48;
        let first = sweeper.first_pass(&seq, &scoring, r, &triangle, 0);
        let orig = first.first_row.unwrap();
        // Dirty only rows ≥ 40 of split 48 (pair p=40 < 48 ≤ q=50).
        triangle.set(40, 50);
        dirty.record_accept(&[(40, 50)]);
        let inc = sweeper.realign(&seq, &scoring, r, &triangle, &orig, &dirty, 1);
        assert!(!inc.full_skip);
        assert!(inc.resumed_at > 0, "expected a checkpoint resume");
        assert!(inc.resumed_at <= 40, "resume must stay above the dirty row");
        let oracle = align_task(&seq, &scoring, r, &triangle, Some(&orig), None);
        assert_eq!(inc.result.score, oracle.score);
        assert_eq!(inc.result.col, oracle.col);
        assert_eq!(inc.result.shadow_rejections, oracle.shadow_rejections);
    }
}
