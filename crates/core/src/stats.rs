//! Work accounting.
//!
//! Every engine reports the same counters so the experiments can compare
//! them directly: the paper's "the SSE version hardly computes more
//! alignments than the sequential version (less than 0.70 %)", "up to
//! 8.4 % more alignments" for the distributed scheduler, and the "90–97 %
//! of realignments avoided" claim for the task-queue heuristic all reduce
//! to these counts.

/// Counters accumulated while finding top alignments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Score-only alignment passes performed (first passes + realignments).
    pub alignments: u64,
    /// Matrix cells computed across all score-only passes.
    pub cells: u64,
    /// Full-matrix traceback passes (one per accepted top alignment).
    pub tracebacks: u64,
    /// Cells computed by traceback passes.
    pub traceback_cells: u64,
    /// Realignments per accepted top alignment, index = top number
    /// (element 0 counts the initial full sweep).
    pub realignments_per_top: Vec<u64>,
    /// Score-pass cells per top number (same indexing); the per-phase
    /// work profile the cluster experiments time-model against.
    pub cells_per_top: Vec<u64>,
    /// Traceback cells per accepted top alignment, in acceptance order.
    pub traceback_cells_per_top: Vec<u64>,
    /// First-pass bottom rows recomputed on demand (only in
    /// [`crate::finder::RowMode::Recompute`], the linear-memory option
    /// of Appendix A).
    pub row_recomputations: u64,
    /// Cells spent on those on-demand recomputations.
    pub row_recompute_cells: u64,
    /// Bottom-row entries rejected by the shadow filter during
    /// realignment acceptance: positions where the realigned row
    /// disagreed with the stored first-pass row (paper App. A).
    pub shadow_rejections: u64,
    /// Queue pops whose upper bound was stale (→ the task was realigned).
    pub stale_pops: u64,
    /// Queue pops whose bound was fresh (→ the head was accepted as a
    /// top alignment without realignment).
    pub fresh_pops: u64,
    /// Queue pops resolved by tightening a never-aligned task's seed
    /// bound without aligning it (the third pop bucket: neither a
    /// realignment nor an acceptance).
    pub pruned_pops: u64,
    /// Splits whose alignment was never computed at all — their seed
    /// bound kept them below every acceptance for the whole run.
    pub splits_pruned: u64,
    /// Post-accept seed-bound recomputations (masked resweeps).
    pub bound_recomputes: u64,
    /// Nanoseconds spent building the seed index and initial bounds
    /// (0 when seeding is off).
    pub seed_index_build_ns: u64,
    /// Cluster task retransmissions (recovery layer).
    pub cluster_retries: u64,
    /// Cluster tasks reassigned away from a dead worker.
    pub cluster_reassignments: u64,
    /// Realignment sweeps served by the incremental layer: a memoised
    /// full skip or a checkpointed mid-matrix resume.
    pub checkpoint_hits: u64,
    /// Realignment sweeps that ran from row 0 with checkpointing
    /// enabled (no valid checkpoint survived, or the budget is 0).
    pub checkpoint_misses: u64,
    /// Realignment DP rows actually swept (first passes excluded).
    pub realign_rows_swept: u64,
    /// Realignment DP rows skipped via memo or checkpoint resume.
    pub realign_rows_skipped: u64,
    /// Row buffers served from the scratch pool instead of the
    /// allocator.
    pub pool_reuses: u64,
    /// SIMD lanes replayed from a per-lane memo instead of swept —
    /// clean lanes of partially-dirty groups plus every lane of a
    /// whole-group skip.
    pub lanes_skipped: u64,
    /// SIMD lanes swept inside a compacted group: a re-packed subset of
    /// a partially-dirty group, or a full pack resumed above row 0.
    pub lanes_compacted: u64,
}

impl Stats {
    /// Fresh counters.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Record one score-only pass of `cells` cells while `tops_found` top
    /// alignments exist.
    pub fn record_alignment(&mut self, cells: u64, tops_found: usize) {
        self.alignments += 1;
        self.cells += cells;
        if self.realignments_per_top.len() <= tops_found {
            self.realignments_per_top.resize(tops_found + 1, 0);
            self.cells_per_top.resize(tops_found + 1, 0);
        }
        self.realignments_per_top[tops_found] += 1;
        self.cells_per_top[tops_found] += cells;
    }

    /// Record one traceback pass.
    pub fn record_traceback(&mut self, cells: u64) {
        self.tracebacks += 1;
        self.traceback_cells += cells;
        self.traceback_cells_per_top.push(cells);
    }

    /// Record one on-demand first-pass-row recomputation.
    pub fn record_row_recompute(&mut self, cells: u64) {
        self.row_recomputations += 1;
        self.row_recompute_cells += cells;
    }

    /// Merge another engine's counters into this one (used by the
    /// parallel engines to sum per-worker stats).
    pub fn merge(&mut self, other: &Stats) {
        self.alignments += other.alignments;
        self.cells += other.cells;
        self.tracebacks += other.tracebacks;
        self.traceback_cells += other.traceback_cells;
        if self.realignments_per_top.len() < other.realignments_per_top.len() {
            self.realignments_per_top
                .resize(other.realignments_per_top.len(), 0);
            self.cells_per_top.resize(other.cells_per_top.len(), 0);
        }
        for (a, b) in self
            .realignments_per_top
            .iter_mut()
            .zip(&other.realignments_per_top)
        {
            *a += b;
        }
        for (a, b) in self.cells_per_top.iter_mut().zip(&other.cells_per_top) {
            *a += b;
        }
        self.traceback_cells_per_top
            .extend_from_slice(&other.traceback_cells_per_top);
        self.row_recomputations += other.row_recomputations;
        self.row_recompute_cells += other.row_recompute_cells;
        self.shadow_rejections += other.shadow_rejections;
        self.stale_pops += other.stale_pops;
        self.fresh_pops += other.fresh_pops;
        self.pruned_pops += other.pruned_pops;
        self.splits_pruned += other.splits_pruned;
        self.bound_recomputes += other.bound_recomputes;
        self.seed_index_build_ns += other.seed_index_build_ns;
        self.cluster_retries += other.cluster_retries;
        self.cluster_reassignments += other.cluster_reassignments;
        self.checkpoint_hits += other.checkpoint_hits;
        self.checkpoint_misses += other.checkpoint_misses;
        self.realign_rows_swept += other.realign_rows_swept;
        self.realign_rows_skipped += other.realign_rows_skipped;
        self.pool_reuses += other.pool_reuses;
        self.lanes_skipped += other.lanes_skipped;
        self.lanes_compacted += other.lanes_compacted;
    }

    /// Fraction of realignment DP rows the incremental layer skipped
    /// (0.0 when no realignment rows were processed at all).
    pub fn rows_skipped_fraction(&self) -> f64 {
        let total = self.realign_rows_swept + self.realign_rows_skipped;
        if total == 0 {
            return 0.0;
        }
        self.realign_rows_skipped as f64 / total as f64
    }

    /// Total score-pass cells spent up to (and including) finding top
    /// alignment `k`, plus the tracebacks — the sequential-time model
    /// used as Figure 8's baseline numerator.
    pub fn cells_to_top(&self, k: usize) -> (u64, u64) {
        let score: u64 = self.cells_per_top.iter().take(k).sum();
        let trace: u64 = self.traceback_cells_per_top.iter().take(k).sum();
        (score, trace)
    }

    /// Fraction of the naive `tops × splits` realignment budget actually
    /// spent after the initial sweep — the quantity the paper reports as
    /// "3–10 % of the matrices need realignment".
    pub fn realignment_fraction(&self, splits: usize) -> f64 {
        if self.realignments_per_top.len() <= 1 || splits == 0 {
            return 0.0;
        }
        let after_first: u64 = self.realignments_per_top[1..].iter().sum();
        let rounds = (self.realignments_per_top.len() - 1) as u64;
        after_first as f64 / (rounds * splits as u64) as f64
    }

    /// [`Self::realignment_fraction`] over the splits that entered the
    /// alignment pipeline at all: seed pruning removes `splits_pruned`
    /// splits from the naive budget, so keeping the full denominator
    /// would overstate "realignments avoided". This is the honest
    /// denominator the prune-aware report band uses.
    pub fn realignment_fraction_effective(&self, splits: usize) -> f64 {
        self.realignment_fraction(splits.saturating_sub(self.splits_pruned as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_fraction() {
        let mut s = Stats::new();
        // Initial sweep: 10 alignments before any top exists.
        for _ in 0..10 {
            s.record_alignment(100, 0);
        }
        // One realignment before top 1, two before top 2.
        s.record_alignment(100, 1);
        s.record_alignment(100, 2);
        s.record_alignment(100, 2);
        assert_eq!(s.alignments, 13);
        assert_eq!(s.cells, 1300);
        assert_eq!(s.realignments_per_top, vec![10, 1, 2]);
        // 3 realignments over 2 rounds × 10 splits = 0.15.
        assert!((s.realignment_fraction(10) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Stats::new();
        a.record_alignment(10, 0);
        a.record_traceback(5);
        let mut b = Stats::new();
        b.record_alignment(20, 0);
        b.record_alignment(30, 1);
        a.shadow_rejections = 2;
        a.stale_pops = 4;
        b.shadow_rejections = 3;
        b.stale_pops = 1;
        b.fresh_pops = 2;
        b.cluster_retries = 5;
        b.cluster_reassignments = 1;
        a.checkpoint_hits = 7;
        b.checkpoint_hits = 2;
        b.checkpoint_misses = 3;
        a.realign_rows_swept = 100;
        b.realign_rows_swept = 50;
        b.realign_rows_skipped = 25;
        b.pool_reuses = 9;
        a.pruned_pops = 6;
        b.pruned_pops = 4;
        b.splits_pruned = 11;
        b.bound_recomputes = 2;
        b.seed_index_build_ns = 1000;
        a.merge(&b);
        assert_eq!(a.alignments, 3);
        assert_eq!(a.cells, 60);
        assert_eq!(a.tracebacks, 1);
        assert_eq!(a.realignments_per_top, vec![2, 1]);
        assert_eq!(a.shadow_rejections, 5);
        assert_eq!(a.stale_pops, 5);
        assert_eq!(a.fresh_pops, 2);
        assert_eq!(a.cluster_retries, 5);
        assert_eq!(a.cluster_reassignments, 1);
        assert_eq!(a.checkpoint_hits, 9);
        assert_eq!(a.checkpoint_misses, 3);
        assert_eq!(a.realign_rows_swept, 150);
        assert_eq!(a.realign_rows_skipped, 25);
        assert_eq!(a.pool_reuses, 9);
        assert_eq!(a.pruned_pops, 10);
        assert_eq!(a.splits_pruned, 11);
        assert_eq!(a.bound_recomputes, 2);
        assert_eq!(a.seed_index_build_ns, 1000);
        assert!((a.rows_skipped_fraction() - 25.0 / 175.0).abs() < 1e-12);
    }

    #[test]
    fn effective_fraction_shrinks_the_denominator() {
        let mut s = Stats::new();
        // 10 first passes, then 3 realignments over 2 rounds.
        for _ in 0..10 {
            s.record_alignment(100, 0);
        }
        s.record_alignment(100, 1);
        s.record_alignment(100, 2);
        s.record_alignment(100, 2);
        s.splits_pruned = 10;
        // Naive budget: 20 splits; effective: 10 aligned splits.
        assert!((s.realignment_fraction(20) - 3.0 / 40.0).abs() < 1e-12);
        assert!((s.realignment_fraction_effective(20) - 3.0 / 20.0).abs() < 1e-12);
        // Degenerate: everything pruned.
        s.splits_pruned = 20;
        assert_eq!(s.realignment_fraction_effective(20), 0.0);
    }

    #[test]
    fn fraction_degenerate_cases() {
        let s = Stats::new();
        assert_eq!(s.realignment_fraction(10), 0.0);
        assert_eq!(s.realignment_fraction(0), 0.0);
    }
}
