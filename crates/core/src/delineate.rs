//! Repeat delineation from top alignments — the second half of the Repro
//! method.
//!
//! The paper computes top alignments and defers delineation tuning to
//! future work (§6, including the `AACAACAAC` unit-size question). This
//! module implements a working delineation pass:
//!
//! 1. every matched pair `(p, q)` of every top alignment votes for the
//!    offset `q − p`; the repeat period is recovered as the approximate
//!    common divisor that explains the most votes (offsets of a tandem
//!    repeat are noisy multiples of the unit length — and the pairwise
//!    *differences* between alignment offsets expose the unit itself,
//!    which resolves `AACAAC` down to `AAC`);
//! 2. every matched position then votes for its residue class modulo
//!    the period; the modal **phase** anchors a unit grid;
//! 3. the aligned span is tiled with period-length windows on that
//!    phase; windows that are mostly aligned territory are the units.
//!
//! Unit boundaries are phase-shifted by the (unknowable) offset of the
//! anchor column within the ancestral unit — the paper itself notes that
//! "the boundaries are often vague". Scoring against planted ground truth
//! therefore compares periods and copy counts, not exact boundaries.

use crate::finder::TopAlignment;
use repro_align::Seq;
use std::ops::Range;

/// One delineated repeat unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepeatUnit {
    /// Residue range of the unit within the sequence.
    pub range: Range<usize>,
}

/// The delineation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepeatReport {
    /// Estimated repeat period (approximate common divisor of the
    /// alignment offsets); `None` when no alignment pairs exist.
    pub period: Option<usize>,
    /// The delineated units, in sequence order.
    pub units: Vec<RepeatUnit>,
    /// Number of residues covered by at least one top-alignment pair.
    pub aligned_residues: usize,
}

impl RepeatReport {
    /// Number of repeat copies found.
    pub fn copies(&self) -> usize {
        self.units.len()
    }

    /// Fraction of the sequence covered by top-alignment pairs.
    pub fn coverage(&self, seq_len: usize) -> f64 {
        if seq_len == 0 {
            0.0
        } else {
            self.aligned_residues as f64 / seq_len as f64
        }
    }

    /// Render the units as GFF3 `repeat_unit` features (1-based,
    /// end-inclusive coordinates, as GFF requires).
    pub fn to_gff(&self, seq_id: &str) -> String {
        let mut out = String::from("##gff-version 3\n");
        for (i, unit) in self.units.iter().enumerate() {
            out.push_str(&format!(
                "{seq_id}\trepro\trepeat_unit\t{}\t{}\t.\t+\t.\tID=unit{};period={}\n",
                unit.range.start + 1,
                unit.range.end,
                i + 1,
                self.period.map_or_else(|| ".".into(), |p| p.to_string()),
            ));
        }
        out
    }
}

/// Estimate the repeat period from top-alignment offsets.
///
/// Candidate periods are the per-alignment median offsets, their
/// pairwise differences, and integer fractions of both; each candidate
/// is scored by how many matched-pair offsets it explains as a near
/// multiple. Returns the *largest* best-scoring candidate, so that a
/// multiple-rich candidate set (`4, 8, 12, …` all explaining an exact
/// `ATGC` tandem) resolves to the true unit, not to 1.
fn estimate_period(tops: &[TopAlignment]) -> Option<usize> {
    // Per-alignment median offsets.
    let mut medians: Vec<i64> = tops
        .iter()
        .filter(|t| !t.pairs.is_empty())
        .map(|t| {
            let mut offs: Vec<i64> = t.pairs.iter().map(|&(p, q)| (q - p) as i64).collect();
            offs.sort_unstable();
            offs[offs.len() / 2]
        })
        .collect();
    if medians.is_empty() {
        return None;
    }
    medians.sort_unstable();
    medians.dedup();

    // All pair offsets, the voting population.
    let offsets: Vec<i64> = tops
        .iter()
        .flat_map(|t| t.pairs.iter().map(|&(p, q)| (q - p) as i64))
        .collect();

    let mut candidates: Vec<i64> = Vec::new();
    for (i, &a) in medians.iter().enumerate() {
        for k in 1..=8 {
            candidates.push(a / k);
        }
        for &b in &medians[i + 1..] {
            let d = b - a;
            for k in 1..=4 {
                candidates.push(d / k);
            }
        }
    }
    candidates.retain(|&d| d >= 2);
    candidates.sort_unstable();
    candidates.dedup();
    if candidates.is_empty() {
        return None; // caller falls back to anchor-gap estimation
    }

    // Fractional fit: each offset contributes 1 − dev/tol (clamped at
    // zero), so a divisor must *explain* offsets, not merely sit within
    // an absolute slack of them — a binary tolerance would make every
    // tiny divisor a universal fitter.
    let score = |d: i64| -> f64 {
        let tol = (d as f64 * 0.12).max(1.0);
        offsets
            .iter()
            .map(|&o| {
                let k = ((o as f64 / d as f64).round() as i64).max(1);
                let dev = (o - k * d).abs() as f64;
                (1.0 - dev / tol).max(0.0)
            })
            .sum()
    };
    let best_score = candidates.iter().map(|&d| score(d)).fold(0.0f64, f64::max);
    // Periodicity must explain a substantial share of the offsets, or
    // the offsets simply are not periodic.
    if best_score < 0.4 * offsets.len() as f64 {
        return None;
    }
    // Largest candidate achieving (almost) the best score wins: for an
    // exact ATGC tandem, 2 and 4 both explain everything — 4 is the unit.
    let threshold = best_score * 0.95;
    candidates
        .into_iter()
        .rev()
        .find(|&d| score(d) >= threshold)
        .map(|d| d as usize)
}

/// Delineate repeats in `seq` from its top alignments.
///
/// ```
/// use repro_core::{delineate, find_top_alignments};
/// use repro_align::{Scoring, Seq};
///
/// let seq = Seq::dna(&"ATGC".repeat(10)).unwrap();
/// let tops = find_top_alignments(&seq, &Scoring::dna_example(), 8);
/// let report = delineate(&seq, &tops.alignments);
/// assert_eq!(report.period, Some(4));
/// assert!(report.copies() >= 8);
/// ```
pub fn delineate(seq: &Seq, tops: &[TopAlignment]) -> RepeatReport {
    let m = seq.len();
    if m == 0 || tops.is_empty() {
        return RepeatReport {
            period: None,
            units: Vec::new(),
            aligned_residues: 0,
        };
    }

    let mut touched = vec![false; m];
    let mut weight = vec![0u64; m]; // per-position alignment depth
    for top in tops {
        for &(p, q) in &top.pairs {
            touched[p] = true;
            touched[q] = true;
            weight[p] += 1;
            weight[q] += 1;
        }
    }
    let aligned_residues = touched.iter().filter(|&&t| t).count();

    // Offset voting; for non-periodic offset structure (e.g. a single
    // isolated duplication) fall back to the strongest alignment's own
    // median offset as "the" period.
    let period = estimate_period(tops).or_else(|| {
        tops.first().map(|t| {
            let mut offs: Vec<usize> = t.pairs.iter().map(|&(p, q)| q - p).collect();
            offs.sort_unstable();
            offs.get(offs.len() / 2).copied().unwrap_or(1).max(1)
        })
    });
    let Some(period) = period.filter(|&p| p >= 1) else {
        return RepeatReport {
            period: None,
            units: Vec::new(),
            aligned_residues,
        };
    };

    // Phase voting: each matched position supports its residue class
    // modulo the period; the modal phase anchors the unit grid. (The
    // grid's phase relative to the *biological* unit start is unknowable
    // from alignments alone — the paper notes the boundaries are vague.)
    let mut votes = vec![0u64; period];
    for top in tops {
        for &(p, q) in &top.pairs {
            votes[p % period] += 1;
            votes[q % period] += 1;
        }
    }
    let phase = votes
        .iter()
        .enumerate()
        .max_by(|(ia, va), (ib, vb)| va.cmp(vb).then(ib.cmp(ia)))
        .map(|(i, _)| i)
        .unwrap_or(0);

    // Tile the aligned span with period-length windows on that phase.
    // Real repeat copies carry deep alignment coverage (several top
    // alignments cross every copy); windows over flanks or spacers are
    // shallow, so windows are kept by *weighted* coverage relative to
    // the deepest window.
    let lo = touched.iter().position(|&t| t).unwrap_or(0);
    let hi = touched.iter().rposition(|&t| t).map_or(0, |p| p + 1);
    let mut start = lo as i64 - (lo as i64 - phase as i64).rem_euclid(period as i64);
    let mut windows: Vec<(Range<usize>, u64)> = Vec::new();
    while start < hi as i64 && start < m as i64 {
        let s = start.max(0) as usize;
        let e = ((start + period as i64) as usize).min(m);
        if e > s {
            let w: u64 = weight[s..e].iter().sum();
            windows.push((s..e, w));
        }
        start += period as i64;
    }
    let max_weight = windows.iter().map(|(_, w)| *w).max().unwrap_or(0);
    let keep = (max_weight * 7 / 20).max(1); // 35 % of the deepest window
    let units: Vec<RepeatUnit> = windows
        .into_iter()
        .filter(|(_, w)| *w >= keep)
        .map(|(range, _)| RepeatUnit { range })
        .collect();

    RepeatReport {
        period: Some(period),
        units,
        aligned_residues,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finder::find_top_alignments;
    use repro_align::Scoring;

    #[test]
    fn empty_inputs() {
        let seq = Seq::dna("ACGT").unwrap();
        let report = delineate(&seq, &[]);
        assert_eq!(report.copies(), 0);
        assert_eq!(report.period, None);
        assert_eq!(report.coverage(4), 0.0);
    }

    #[test]
    fn exact_tandem_resolves_to_the_smallest_unit() {
        // ATGC × 20: transitive closure over several top alignments must
        // resolve the period down to 4 (the paper's AACAAC-vs-AAC issue).
        let seq = Seq::dna(&"ATGC".repeat(20)).unwrap();
        let scoring = Scoring::dna_example();
        let tops = find_top_alignments(&seq, &scoring, 12);
        let report = delineate(&seq, &tops.alignments);
        assert_eq!(report.period, Some(4), "period should collapse to 4");
        // All anchors sample the same residue of the unit.
        let first = seq.codes()[report.units[0].range.start];
        for u in &report.units {
            assert_eq!(seq.codes()[u.range.start], first);
        }
        assert!(
            report.copies() >= 15,
            "found only {} of ~20 copies",
            report.copies()
        );
    }

    #[test]
    fn units_are_disjoint_and_ordered() {
        let seq = Seq::dna(&"ACGGT".repeat(12)).unwrap();
        let scoring = Scoring::dna_example();
        let tops = find_top_alignments(&seq, &scoring, 10);
        let report = delineate(&seq, &tops.alignments);
        for w in report.units.windows(2) {
            assert!(w[0].range.end <= w[1].range.start);
        }
        for u in &report.units {
            assert!(u.range.start < u.range.end);
            assert!(u.range.end <= seq.len());
        }
    }

    #[test]
    fn coverage_reflects_aligned_pairs() {
        let seq = Seq::dna(&"ATGC".repeat(10)).unwrap();
        let scoring = Scoring::dna_example();
        let tops = find_top_alignments(&seq, &scoring, 5);
        let report = delineate(&seq, &tops.alignments);
        let cov = report.coverage(seq.len());
        assert!(
            cov > 0.5,
            "repetitive sequence should be well covered: {cov}"
        );
        assert!(cov <= 1.0);
    }

    #[test]
    fn gff_output_is_one_based_inclusive() {
        let seq = Seq::dna(&"ATGC".repeat(4)).unwrap();
        let scoring = Scoring::dna_example();
        let tops = find_top_alignments(&seq, &scoring, 4);
        let report = delineate(&seq, &tops.alignments);
        let gff = report.to_gff("chr_test");
        assert!(gff.starts_with("##gff-version 3\n"));
        let first = gff.lines().nth(1).expect("at least one unit");
        let cols: Vec<&str> = first.split('\t').collect();
        assert_eq!(cols[0], "chr_test");
        assert_eq!(cols[2], "repeat_unit");
        // Unit 0..4 renders as 1..4 in GFF coordinates.
        assert_eq!(cols[3], "1");
        assert_eq!(cols[4], "4");
        assert!(cols[8].contains("period=4"));
        assert_eq!(gff.lines().count(), 1 + report.copies());
    }

    #[test]
    fn non_repetitive_sequence_yields_little() {
        let seq = Seq::dna("ACGTTGCA").unwrap();
        let scoring = Scoring::dna_example();
        let tops = find_top_alignments(&seq, &scoring, 3);
        let report = delineate(&seq, &tops.alignments);
        // Whatever tiny alignments exist, the report stays consistent.
        assert!(report.copies() <= 4);
        assert!(report.aligned_residues <= seq.len());
    }
}
