//! Seeded split bounds: admissible per-split score ceilings.
//!
//! The best-first queue of Figure 5 starts every split at
//! [`crate::tasks::SCORE_INFINITY`], so even a low-repeat sequence pays
//! one full Gotoh sweep per split before the queue learns anything.
//! This module replaces those infinite initial bounds with **finite
//! admissible** ones, computed once per sequence:
//!
//! * [`SeedIndex`] — a k-mer index with diagonal bucketing (the classic
//!   seed-and-extend localisation device). It is a *diagnostic*: its
//!   seed-mass statistics localise repeat structure and feed the prune
//!   bench, but they are **not** the bound source. A pure seed-mass
//!   ceiling (matched-seed mass at max substitution value plus a cap on
//!   unseeded stretches) is *not* admissible for the scoring models
//!   used here: a sequence of `n` disjoint runs of `k − 1` matches each
//!   carries zero k-mer seeds yet scores `Θ(n)` — no seed-blind
//!   constant cap can dominate it. DESIGN.md records the counterexample.
//! * [`SplitBounds`] — the bound source that *is* exact: one triangular
//!   self-comparison sweep ([`repro_align::tri_self_sweep_resume`])
//!   dominates every split matrix at once, because each split-`r` cell
//!   `(i, j)` is the triangle cell `(i, j + r)` with a subset of the
//!   triangle's predecessors (see the kernel's module docs for the
//!   induction). `B(r) = max {H(i, j) : i < r ≤ j}` is therefore an
//!   upper bound on split `r`'s true masked Smith–Waterman score —
//!   *the bound lattice is `∞ → B(r) → exact score`*, each step a
//!   refinement the queue can rely on.
//!
//! The sweep is checkpointed at row strides, so when an accepted top
//! alignment grows the override triangle the bounds are **recomputed
//! from the masked sweep** (never reset to infinity): the dirty row of
//! the new pairs (their minimal `p`, exactly the [`crate::DirtyLog`]
//! boundary) selects the deepest clean checkpoint, and only rows below
//! it are reswept. Masking is monotone — cells only get zeroed — so
//! recomputed bounds only tighten, and stale heap entries carrying the
//! older, larger bound remain admissible.

use crate::triangle::OverrideTriangle;
use repro_align::{
    kmer_keys, tri_initial_state, tri_self_sweep_resume, CellMask, Score, Scoring, MAX_KMER_K,
};
use std::collections::HashMap;
use std::time::Instant;

/// Occurrence-list cap: k-mers more frequent than this are skipped when
/// pairing occurrences (quadratic blow-up guard; such k-mers carry no
/// localisation signal anyway).
const OCC_CAP: usize = 64;

/// Configuration of the seed-and-bound layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedConfig {
    /// k-mer width of the diagnostic [`SeedIndex`] (`1 ..= MAX_KMER_K`).
    pub k: usize,
}

impl SeedConfig {
    /// Config with an explicit k-mer width.
    pub fn new(k: usize) -> Self {
        assert!((1..=MAX_KMER_K).contains(&k), "seed k {k} out of range");
        SeedConfig { k }
    }
}

impl Default for SeedConfig {
    /// `k = 6`: specific enough to localise DNA repeats, short enough
    /// that genuine repeat copies with scattered mismatches still seed.
    fn default() -> Self {
        SeedConfig { k: 6 }
    }
}

/// View of the override triangle as a pair-coordinate cell mask for the
/// triangular self-sweep (`is_overridden(p, q)` with `p < q`, both
/// sequence positions — contrast [`crate::SplitMask`], which shifts
/// split-matrix coordinates first).
#[derive(Debug, Clone, Copy)]
pub struct PairMask<'a>(pub &'a OverrideTriangle);

impl CellMask for PairMask<'_> {
    #[inline(always)]
    fn is_overridden(&self, p: usize, q: usize) -> bool {
        self.0.get(p, q)
    }

    #[inline(always)]
    fn is_empty_hint(&self) -> bool {
        self.0.is_empty()
    }
}

/// k-mer self-match index with diagonal bucketing.
///
/// For every pair of occurrences `(p, q)`, `p < q`, of the same k-mer,
/// the pair sits on diagonal `q − p` and *supports* split `r` iff both
/// copies survive the split intact: `p + k ≤ r ≤ q`. The index answers
/// "how many seed pairs support split `r`?" in `O(1)` via a prefix-sum
/// table, and exposes the heaviest diagonal — the period estimate the
/// prune bench reports next to the measured prune fraction.
#[derive(Debug, Clone)]
pub struct SeedIndex {
    k: usize,
    /// `straddle[r]` = seed pairs supporting split `r` (index 0 unused).
    straddle: Vec<u32>,
    /// Seed-pair count per diagonal `q − p`.
    diagonals: HashMap<usize, u32>,
    /// `true` if any occurrence list hit [`OCC_CAP`] (counts are then
    /// lower bounds).
    capped: bool,
}

impl SeedIndex {
    /// Index the k-mer self-matches of `codes`.
    pub fn build(codes: &[u8], k: usize) -> Self {
        let len = codes.len();
        let mut occ: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, key) in kmer_keys(codes, k).into_iter().enumerate() {
            occ.entry(key).or_default().push(i as u32);
        }
        let mut diff = vec![0i64; len + 2];
        let mut diagonals: HashMap<usize, u32> = HashMap::new();
        let mut capped = false;
        for positions in occ.values() {
            if positions.len() > OCC_CAP {
                capped = true;
                continue;
            }
            for (a, &p) in positions.iter().enumerate() {
                for &q in &positions[a + 1..] {
                    let (p, q) = (p as usize, q as usize);
                    *diagonals.entry(q - p).or_insert(0) += 1;
                    // Supports r ∈ [p + k, q] (both copies intact).
                    if p + k <= q {
                        diff[p + k] += 1;
                        diff[q + 1] -= 1;
                    }
                }
            }
        }
        let mut straddle = vec![0u32; len.max(1)];
        let mut running = 0i64;
        for (r, s) in straddle.iter_mut().enumerate() {
            running += diff[r];
            *s = running as u32;
        }
        SeedIndex {
            k,
            straddle,
            diagonals,
            capped,
        }
    }

    /// The indexed k-mer width.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Seed pairs whose two copies both survive split `r` intact.
    pub fn seeds_straddling(&self, r: usize) -> u32 {
        self.straddle.get(r).copied().unwrap_or(0)
    }

    /// Heaviest diagonal and its seed-pair count (ties: smaller
    /// diagonal) — the dominant period estimate. `None` if seedless.
    pub fn top_diagonal(&self) -> Option<(usize, u32)> {
        self.diagonals
            .iter()
            .map(|(&d, &c)| (d, c))
            .max_by_key(|&(d, c)| (c, std::cmp::Reverse(d)))
    }

    /// Number of distinct diagonals carrying at least one seed pair.
    pub fn distinct_diagonals(&self) -> usize {
        self.diagonals.len()
    }

    /// `true` if an occurrence cap truncated the pair counts.
    pub fn capped(&self) -> bool {
        self.capped
    }
}

/// Stride-aligned snapshot of the triangular sweep's resume state.
#[derive(Debug, Clone)]
struct Checkpoint {
    /// Rows `0..start_row` are folded into this snapshot.
    start_row: usize,
    m: Vec<Score>,
    maxy: Vec<Score>,
    colmax: Vec<Score>,
}

/// Admissible per-split score bounds from the triangular self-sweep,
/// recomputable under a growing override triangle.
#[derive(Debug, Clone)]
pub struct SplitBounds {
    config: SeedConfig,
    index: SeedIndex,
    /// `bounds[r] = B(r)`, `1 ≤ r < m` (index 0 unused).
    bounds: Vec<Score>,
    checkpoints: Vec<Checkpoint>,
    stride: usize,
    build_ns: u64,
    recomputes: u64,
}

fn stride_for(len: usize) -> usize {
    (len / 8).max(4)
}

/// Fold one completed sweep row into the column maxima and emit the
/// next split's bound: after row `i`, `colmax[j] = max_{i' ≤ i} H(i', j)`,
/// so `B(i + 1) = max_{j ≥ i + 1} colmax[j]`.
fn fold_row(i: usize, row: &[Score], colmax: &mut [Score], bounds: &mut [Score]) {
    let len = row.len();
    for j in i + 1..len {
        colmax[j] = colmax[j].max(row[j]);
    }
    if i + 1 < len {
        let mut best = 0;
        for &c in &colmax[i + 1..] {
            best = best.max(c);
        }
        bounds[i + 1] = best;
    }
}

impl SplitBounds {
    /// One full (empty-triangle) sweep: bounds, checkpoints, and the
    /// diagnostic seed index, with the build timed for `Stats`.
    pub fn build(codes: &[u8], scoring: &Scoring, config: SeedConfig) -> Self {
        let t0 = Instant::now();
        let index = SeedIndex::build(codes, config.k);
        let len = codes.len();
        let stride = stride_for(len);
        let (mut m, mut maxy) = tri_initial_state(len);
        let mut colmax = vec![0 as Score; len];
        let mut bounds = vec![0 as Score; len];
        let mut checkpoints = Vec::new();
        tri_self_sweep_resume(
            codes,
            scoring,
            repro_align::NoMask,
            0,
            &mut m,
            &mut maxy,
            &mut |i, row, my| {
                fold_row(i, row, &mut colmax, &mut bounds);
                if (i + 1) % stride == 0 && i + 1 < len {
                    checkpoints.push(Checkpoint {
                        start_row: i + 1,
                        m: row.to_vec(),
                        maxy: my.to_vec(),
                        colmax: colmax.clone(),
                    });
                }
            },
        );
        SplitBounds {
            config,
            index,
            bounds,
            checkpoints,
            stride,
            build_ns: t0.elapsed().as_nanos() as u64,
            recomputes: 0,
        }
    }

    /// The config this was built with.
    pub fn config(&self) -> SeedConfig {
        self.config
    }

    /// The diagnostic k-mer index.
    pub fn index(&self) -> &SeedIndex {
        &self.index
    }

    /// The admissible bound for split `r` (0 — the exact score of an
    /// impossible split — outside `1 ≤ r < m`).
    pub fn bound(&self, r: usize) -> Score {
        self.bounds.get(r).copied().unwrap_or(0)
    }

    /// All bounds, indexed by `r` (entry 0 unused).
    pub fn bounds(&self) -> &[Score] {
        &self.bounds
    }

    /// Sequence length the bounds cover.
    pub fn seq_len(&self) -> usize {
        self.bounds.len()
    }

    /// Nanoseconds the initial build took (index + full sweep).
    pub fn build_ns(&self) -> u64 {
        self.build_ns
    }

    /// Number of post-accept bound recomputations performed.
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    /// Tighten the bounds after the override triangle grew.
    ///
    /// `dirty_row` is the minimal `p` over the newly overridden pairs
    /// `(p, q)` — the first triangle-sweep row whose cells the new mask
    /// entries can touch (identical to the [`crate::DirtyLog`] row
    /// bound). Resumes from the deepest checkpoint at or above that
    /// row, resweeps under [`PairMask`], and refreshes later
    /// checkpoints. Bounds for `r ≤ dirty_row` depend only on clean
    /// rows and are untouched.
    ///
    /// Masking only zeroes cells, so every bound is non-increasing
    /// across recomputations; entries already sitting in a task queue
    /// with an older bound stay admissible.
    pub fn recompute(
        &mut self,
        codes: &[u8],
        scoring: &Scoring,
        triangle: &OverrideTriangle,
        dirty_row: usize,
    ) {
        let len = self.bounds.len();
        debug_assert_eq!(codes.len(), len, "bounds built for another sequence");
        if len < 2 {
            return;
        }
        let (start, mut m, mut maxy, mut colmax) = match self
            .checkpoints
            .iter()
            .filter(|c| c.start_row <= dirty_row)
            .max_by_key(|c| c.start_row)
        {
            Some(c) => (c.start_row, c.m.clone(), c.maxy.clone(), c.colmax.clone()),
            None => {
                let (m, maxy) = tri_initial_state(len);
                (0, m, maxy, vec![0 as Score; len])
            }
        };
        self.checkpoints.retain(|c| c.start_row <= start);
        let stride = self.stride;
        let bounds = &mut self.bounds;
        let checkpoints = &mut self.checkpoints;
        tri_self_sweep_resume(
            codes,
            scoring,
            PairMask(triangle),
            start,
            &mut m,
            &mut maxy,
            &mut |i, row, my| {
                fold_row(i, row, &mut colmax, bounds);
                if (i + 1) % stride == 0 && i + 1 < len && i + 1 > start {
                    checkpoints.push(Checkpoint {
                        start_row: i + 1,
                        m: row.to_vec(),
                        maxy: my.to_vec(),
                        colmax: colmax.clone(),
                    });
                }
            },
        );
        self.recomputes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split_mask::SplitMask;
    use repro_align::{sw_last_row, Seq};

    fn rng(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    fn random_dna(len: usize, seed: &mut u64) -> Seq {
        let text: String = (0..len)
            .map(|_| ['A', 'C', 'G', 'T'][(rng(seed) % 4) as usize])
            .collect();
        Seq::dna(&text).unwrap()
    }

    /// A plausible accepted-alignment pair list: strictly ascending in
    /// both coordinates, all straddling at least one split.
    fn random_pairs(len: usize, seed: &mut u64) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        let mut p = (rng(seed) as usize) % (len / 3).max(1);
        let mut q = len / 2 + (rng(seed) as usize) % (len / 4).max(1);
        while p < q && q < len && pairs.len() < 6 {
            pairs.push((p, q));
            p += 1 + (rng(seed) as usize) % 2;
            q += 1 + (rng(seed) as usize) % 2;
        }
        pairs
    }

    #[test]
    fn bounds_dominate_every_split_on_empty_triangle() {
        let scoring = Scoring::dna_example();
        let mut seed = 0x9e3779b97f4a7c15u64;
        for case in 0..6 {
            let seq = random_dna(14 + case * 9, &mut seed);
            let sb = SplitBounds::build(seq.codes(), &scoring, SeedConfig::default());
            let triangle = OverrideTriangle::new(seq.len());
            for r in 1..seq.len() {
                let (prefix, suffix) = seq.split(r);
                let exact = sw_last_row(prefix, suffix, &scoring, SplitMask::new(&triangle, r));
                assert!(
                    sb.bound(r) >= exact.best,
                    "case {case}: bound {} < split-{r} best {}",
                    sb.bound(r),
                    exact.best
                );
            }
        }
    }

    #[test]
    fn recompute_matches_full_masked_resweep_and_stays_admissible() {
        let scoring = Scoring::dna_example();
        let mut seed = 0xfeedfacecafebeefu64;
        for case in 0..6 {
            let seq = random_dna(40 + case * 11, &mut seed);
            let mut triangle = OverrideTriangle::new(seq.len());
            let pairs = random_pairs(seq.len(), &mut seed);
            for &(p, q) in &pairs {
                triangle.set(p, q);
            }
            let dirty_row = pairs.iter().map(|&(p, _)| p).min().unwrap();

            let mut incremental = SplitBounds::build(seq.codes(), &scoring, SeedConfig::new(4));
            let before = incremental.bounds().to_vec();
            incremental.recompute(seq.codes(), &scoring, &triangle, dirty_row);

            // Oracle: full masked resweep from row 0.
            let mut full = SplitBounds::build(seq.codes(), &scoring, SeedConfig::new(4));
            full.recompute(seq.codes(), &scoring, &triangle, 0);

            assert_eq!(incremental.bounds(), full.bounds(), "case {case}");
            assert_eq!(incremental.recomputes(), 1);
            for (r, &prev) in before.iter().enumerate().skip(1) {
                assert!(
                    incremental.bound(r) <= prev,
                    "case {case}: bound for split {r} grew under masking"
                );
                let (prefix, suffix) = seq.split(r);
                let exact = sw_last_row(prefix, suffix, &scoring, SplitMask::new(&triangle, r));
                assert!(
                    incremental.bound(r) >= exact.best,
                    "case {case}: recomputed bound {} < masked split-{r} best {}",
                    incremental.bound(r),
                    exact.best
                );
            }
        }
    }

    #[test]
    fn repeated_recomputes_track_a_growing_triangle() {
        let scoring = Scoring::dna_example();
        let mut seed = 0x0123456789abcdefu64;
        let seq = random_dna(64, &mut seed);
        let mut triangle = OverrideTriangle::new(seq.len());
        let mut sb = SplitBounds::build(seq.codes(), &scoring, SeedConfig::default());
        for accept in 0..4 {
            let pairs = random_pairs(seq.len(), &mut seed);
            for &(p, q) in &pairs {
                if !triangle.get(p, q) {
                    triangle.set(p, q);
                }
            }
            let dirty_row = pairs.iter().map(|&(p, _)| p).min().unwrap();
            sb.recompute(seq.codes(), &scoring, &triangle, dirty_row);
            assert_eq!(sb.recomputes(), accept + 1);
            for r in 1..seq.len() {
                let (prefix, suffix) = seq.split(r);
                let exact = sw_last_row(prefix, suffix, &scoring, SplitMask::new(&triangle, r));
                assert!(
                    sb.bound(r) >= exact.best,
                    "accept {accept}: bound {} < split-{r} best {}",
                    sb.bound(r),
                    exact.best
                );
            }
        }
    }

    #[test]
    fn seed_index_straddle_counts_match_brute_force() {
        let seq = Seq::dna("ACGTACGTTTACGTA").unwrap();
        let k = 4;
        let index = SeedIndex::build(seq.codes(), k);
        let keys = kmer_keys(seq.codes(), k);
        for r in 0..seq.len() {
            let mut expect = 0u32;
            for p in 0..keys.len() {
                for q in p + 1..keys.len() {
                    if keys[p] == keys[q] && p + k <= r && r <= q {
                        expect += 1;
                    }
                }
            }
            assert_eq!(index.seeds_straddling(r), expect, "split {r}");
        }
        assert!(!index.capped());
        // ACGT repeats on diagonals 4 (within the first two copies) and
        // beyond; the heaviest diagonal must carry at least one pair.
        assert!(index.top_diagonal().is_some());
        assert!(index.distinct_diagonals() >= 1);
    }

    #[test]
    fn seedless_sequence_indexes_empty() {
        let seq = Seq::dna("ACGTAGCATGCTAAC").unwrap();
        let index = SeedIndex::build(seq.codes(), 8);
        assert_eq!(index.top_diagonal(), None);
        for r in 0..seq.len() {
            assert_eq!(index.seeds_straddling(r), 0);
        }
    }

    #[test]
    fn tiny_sequences_are_handled() {
        let scoring = Scoring::dna_example();
        for text in ["", "A", "AC"] {
            let seq = Seq::dna(text).unwrap();
            let mut sb = SplitBounds::build(seq.codes(), &scoring, SeedConfig::default());
            assert_eq!(sb.seq_len(), seq.len());
            assert_eq!(sb.bound(0), 0);
            let triangle = OverrideTriangle::new(seq.len());
            sb.recompute(seq.codes(), &scoring, &triangle, 0);
        }
    }
}
