//! The sequential top-alignment algorithm (paper §3, Figure 5).
//!
//! The driver maintains one task per split in a best-first queue. A
//! task's queued score is an upper bound (scores only drop as the
//! override triangle grows — the masking-monotonicity property tested in
//! `repro-align`), so when the queue's head has been aligned against the
//! *current* triangle it is provably the next top alignment; otherwise it
//! is realigned and requeued. This skips the 90–97 % of realignments a
//! naive per-top full sweep would perform.
//!
//! The free functions [`align_task`] and [`accept_task`] are the two
//! primitives; the shared-memory and distributed engines reuse them with
//! their own schedulers so all engines produce identical output.

use crate::bottom::{best_valid_entry, best_valid_entry_counted, BottomRowStore};
use crate::dirty::DirtyLog;
use crate::incremental::IncrementalSweeper;
use crate::seed::{SeedConfig, SplitBounds};
use crate::split_mask::SplitMask;
use crate::stats::Stats;
use crate::tasks::{Task, TaskQueue, NEVER_ALIGNED};
use crate::triangle::OverrideTriangle;
use repro_align::kernel::full::{sw_full, traceback};
use repro_align::{sw_last_row, sw_last_row_striped, NoMask, Score, Scoring, Seq};
use repro_obs::{Counter, Metric, NoopRecorder, Phase, Progress, Recorder};
use std::time::Instant;

/// How first-pass bottom rows are kept for shadow filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowMode {
    /// Store all `m(m−1)/2` scores — the paper's default, and its
    /// largest data structure (App. A).
    #[default]
    Store,
    /// Recompute a split's clean (unmasked) bottom row on demand:
    /// Appendix A's "on-demand recomputation ... at the expense of extra
    /// work; this would allow an implementation that requires only a
    /// linear amount of memory". Combine with
    /// [`OverrideTriangle::new_sparse`] for the fully linear-memory
    /// configuration.
    Recompute,
}

/// Configuration of a top-alignment search.
#[derive(Debug, Clone)]
pub struct FinderConfig {
    /// Number of top alignments to find (the paper uses 10–100; Table 1
    /// uses 50).
    pub count: usize,
    /// Optional cache-aware stripe width for the score kernel
    /// (`None` = plain row-major; see paper §4.1).
    pub stripe: Option<usize>,
    /// Bottom-row storage strategy.
    pub row_mode: RowMode,
    /// Use the compressed (sparse) override triangle.
    pub sparse_triangle: bool,
    /// Byte budget for the incremental realignment layer's checkpoint
    /// store (`None` disables the layer entirely; `Some(0)` enables the
    /// accounting but never stores state, so every sweep is a miss).
    /// When enabled, realignments use the plain row-major kernel — the
    /// `stripe` option only affects the clean-row recomputations.
    /// Results are bit-identical either way.
    pub checkpoint_budget: Option<usize>,
    /// Seeded split pruning: replace the infinite initial task bounds
    /// with admissible [`SplitBounds`] so splits that cannot beat the
    /// accepted alignments are never aligned at all. `None` (the
    /// default) reproduces the paper's schedule exactly; `Some` keeps
    /// the accepted alignments bit-identical but skips sweeps (the
    /// pop-level accounting moves to `pruned_pops`/`splits_pruned`).
    pub seed: Option<SeedConfig>,
}

impl FinderConfig {
    /// Find `count` top alignments with default settings (stored rows,
    /// dense triangle, row-major kernel).
    pub fn new(count: usize) -> Self {
        FinderConfig {
            count,
            stripe: None,
            row_mode: RowMode::Store,
            sparse_triangle: false,
            checkpoint_budget: None,
            seed: None,
        }
    }

    /// [`Self::new`] with the incremental realignment layer enabled
    /// under a checkpoint byte budget.
    pub fn checkpointed(count: usize, budget: usize) -> Self {
        FinderConfig {
            checkpoint_budget: Some(budget),
            ..FinderConfig::new(count)
        }
    }

    /// [`Self::new`] with seeded split pruning enabled.
    pub fn seeded(count: usize, seed: SeedConfig) -> Self {
        FinderConfig {
            seed: Some(seed),
            ..FinderConfig::new(count)
        }
    }

    /// The linear-memory configuration of Appendix A: sparse triangle
    /// plus on-demand row recomputation.
    pub fn linear_memory(count: usize) -> Self {
        FinderConfig {
            count,
            stripe: None,
            row_mode: RowMode::Recompute,
            sparse_triangle: true,
            checkpoint_budget: None,
            seed: None,
        }
    }
}

/// One accepted nonoverlapping top alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopAlignment {
    /// Acceptance order (0-based).
    pub index: usize,
    /// The split whose matrix produced this alignment.
    pub r: usize,
    /// Alignment score.
    pub score: Score,
    /// Matched residue pairs in **sequence coordinates** `(p, q)`,
    /// `p < r ≤ q`, in path order.
    pub pairs: Vec<(usize, usize)>,
}

impl TopAlignment {
    /// Sequence range covered on the prefix side (`None` if empty).
    pub fn prefix_span(&self) -> Option<std::ops::Range<usize>> {
        let first = self.pairs.first()?;
        let last = self.pairs.last()?;
        Some(first.0..last.0 + 1)
    }

    /// Sequence range covered on the suffix side (`None` if empty).
    pub fn suffix_span(&self) -> Option<std::ops::Range<usize>> {
        let first = self.pairs.first()?;
        let last = self.pairs.last()?;
        Some(first.1..last.1 + 1)
    }

    /// CIGAR-style operation string over the matched pairs: `M` runs
    /// for aligned pairs, `I` for prefix-side residues skipped by a
    /// gap, `D` for suffix-side residues skipped.
    pub fn cigar(&self) -> String {
        if self.pairs.is_empty() {
            return String::from("*");
        }
        let mut out = String::new();
        let mut m_run = 1usize;
        for w in self.pairs.windows(2) {
            let (p, q) = (w[0], w[1]);
            let dp = q.0 - p.0;
            let dq = q.1 - p.1;
            if dp == 1 && dq == 1 {
                m_run += 1;
                continue;
            }
            out.push_str(&format!("{m_run}M"));
            if dp > 1 {
                out.push_str(&format!("{}I", dp - 1));
            }
            if dq > 1 {
                out.push_str(&format!("{}D", dq - 1));
            }
            m_run = 1;
        }
        out.push_str(&format!("{m_run}M"));
        out
    }

    /// Fraction of matched pairs with identical residues.
    pub fn identity(&self, seq: &Seq) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        let same = self
            .pairs
            .iter()
            .filter(|&&(p, q)| seq[p] == seq[q])
            .count();
        same as f64 / self.pairs.len() as f64
    }
}

/// The result of a top-alignment search.
#[derive(Debug, Clone)]
pub struct TopAlignments {
    /// Accepted top alignments, in acceptance order. May be shorter than
    /// requested when the sequence runs out of positive nonoverlapping
    /// alignments.
    pub alignments: Vec<TopAlignment>,
    /// Work counters.
    pub stats: Stats,
    /// Final override triangle (all matched pairs of all alignments).
    pub triangle: OverrideTriangle,
}

/// Outcome of [`align_task`].
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// Best valid (non-shadow) bottom-row score; 0 if none.
    pub score: Score,
    /// Column of that score, if positive.
    pub col: Option<usize>,
    /// The bottom row — returned only for first passes, for storage.
    pub first_row: Option<Vec<Score>>,
    /// Cells computed.
    pub cells: u64,
    /// Bottom-row positions the shadow filter rejected (always 0 for a
    /// first pass, which has nothing to compare against).
    pub shadow_rejections: u64,
}

/// Score-only (re)alignment of split `r` under `triangle`.
///
/// `original` is the stored first-pass bottom row; pass `None` for the
/// first pass (which must, and is asserted to, run with an empty
/// triangle — Figure 5 guarantees this because every initial task has
/// infinite priority). For realignments, entries differing from
/// `original` are shadow alignments and are skipped (Appendix A).
pub fn align_task(
    seq: &Seq,
    scoring: &Scoring,
    r: usize,
    triangle: &OverrideTriangle,
    original: Option<&[Score]>,
    stripe: Option<usize>,
) -> TaskResult {
    let (prefix, suffix) = seq.split(r);
    let mask = SplitMask::new(triangle, r);
    let last = match stripe {
        Some(w) => sw_last_row_striped(prefix, suffix, scoring, mask, w),
        None => sw_last_row(prefix, suffix, scoring, mask),
    };
    match original {
        None => {
            debug_assert!(
                triangle.is_empty(),
                "first pass of split {r} must see an empty triangle"
            );
            TaskResult {
                score: last.best_in_row,
                col: last.best_in_row_col,
                cells: last.cells,
                first_row: Some(last.row),
                shadow_rejections: 0,
            }
        }
        Some(orig) => {
            let (score, col, shadows) = best_valid_entry_counted(&last.row, orig);
            TaskResult {
                score,
                col,
                cells: last.cells,
                first_row: None,
                shadow_rejections: shadows,
            }
        }
    }
}

/// Accept split `r` as top alignment number `index`: recompute its matrix
/// under the current triangle, trace back from the best valid bottom-row
/// end point, and mark every matched pair in the triangle.
///
/// Returns the alignment and the number of cells the traceback pass
/// computed. The caller must have just verified (via a fresh
/// [`align_task`]) that `r` holds the best score; this function asserts
/// the score it finds matches `expected_score`.
pub fn accept_task(
    seq: &Seq,
    scoring: &Scoring,
    r: usize,
    expected_score: Score,
    triangle: &mut OverrideTriangle,
    bottom: &BottomRowStore,
    index: usize,
) -> (TopAlignment, u64) {
    let original = bottom
        .get(r)
        .expect("accepted split must have a stored first-pass row");
    accept_task_with_row(seq, scoring, r, expected_score, triangle, original, index)
}

/// [`accept_task`] against an explicitly provided first-pass bottom row
/// (the parallel engines keep rows in their own shared storage).
pub fn accept_task_with_row(
    seq: &Seq,
    scoring: &Scoring,
    r: usize,
    expected_score: Score,
    triangle: &mut OverrideTriangle,
    original: &[Score],
    index: usize,
) -> (TopAlignment, u64) {
    let (prefix, suffix) = seq.split(r);
    let matrix = sw_full(prefix, suffix, scoring, SplitMask::new(triangle, r));
    let (score, col) = best_valid_entry(matrix.last_row(), original);
    assert_eq!(
        score, expected_score,
        "acceptance recomputation of split {r} disagrees with its queue score"
    );
    let col = col.expect("accepted task must have a positive valid entry");
    let al = traceback(&matrix, (r - 1, col), prefix, suffix, scoring);
    let pairs: Vec<(usize, usize)> = al.pairs.iter().map(|p| (p.row, r + p.col)).collect();
    for &(p, q) in &pairs {
        triangle.set(p, q);
    }
    (
        TopAlignment {
            index,
            r,
            score,
            pairs,
        },
        matrix.rows() as u64 * matrix.cols() as u64,
    )
}

/// What one [`TopAlignmentFinder::step`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// A stale task was (re)aligned and requeued with this score.
    Realigned {
        /// The split that was realigned.
        r: usize,
        /// Its new exact score.
        score: Score,
    },
    /// A fresh head task was accepted as the next top alignment.
    Accepted {
        /// The split that was accepted.
        r: usize,
        /// The accepted score.
        score: Score,
    },
    /// A never-aligned head task was requeued with its tightened seed
    /// bound **without aligning it** — the bound-fresh fast path. Only
    /// produced with [`FinderConfig::seed`] set.
    Pruned {
        /// The split whose bound was tightened.
        r: usize,
        /// The tightened (still admissible) bound it re-entered with.
        bound: Score,
    },
    /// No positive nonoverlapping alignment remains (or the requested
    /// count is reached).
    Done,
}

/// Incremental driver for the sequential algorithm. [`Self::run`] is the
/// one-shot entry point; `step` exposes the loop for tests and tools.
pub struct TopAlignmentFinder<'a> {
    seq: &'a Seq,
    scoring: &'a Scoring,
    config: FinderConfig,
    queue: TaskQueue,
    triangle: OverrideTriangle,
    /// `Some` in [`RowMode::Store`], `None` in [`RowMode::Recompute`].
    bottom: Option<BottomRowStore>,
    alignments: Vec<TopAlignment>,
    stats: Stats,
    /// Dirty-bound log feeding the incremental layer (empty while
    /// `incr` is `None`).
    dirty: DirtyLog,
    /// `Some` iff `config.checkpoint_budget` is set.
    incr: Option<IncrementalSweeper>,
    /// `Some` iff `config.seed` is set: the admissible per-split bounds.
    bounds: Option<SplitBounds>,
    /// Splits that have completed their first alignment pass (with
    /// seeding, not all of them ever do).
    first_passes: usize,
}

impl<'a> TopAlignmentFinder<'a> {
    /// Set up a search over `seq`.
    pub fn new(seq: &'a Seq, scoring: &'a Scoring, config: FinderConfig) -> Self {
        let m = seq.len();
        let triangle = if config.sparse_triangle {
            OverrideTriangle::new_sparse(m)
        } else {
            OverrideTriangle::new(m)
        };
        let bottom = match config.row_mode {
            RowMode::Store => Some(BottomRowStore::new(m)),
            RowMode::Recompute => None,
        };
        let incr = config.checkpoint_budget.map(IncrementalSweeper::new);
        let bounds = config
            .seed
            .map(|sc| SplitBounds::build(seq.codes(), scoring, sc));
        let queue = match &bounds {
            Some(b) => TaskQueue::for_sequence_len_bounded(m, b.bounds()),
            None => TaskQueue::for_sequence_len(m),
        };
        let mut stats = Stats::new();
        if let Some(b) = &bounds {
            stats.seed_index_build_ns = b.build_ns();
        }
        TopAlignmentFinder {
            seq,
            scoring,
            config,
            queue,
            triangle,
            bottom,
            alignments: Vec::new(),
            stats,
            dirty: DirtyLog::new(),
            incr,
            bounds,
            first_passes: 0,
        }
    }

    /// Recompute the clean (empty-triangle) bottom row of split `r` —
    /// the on-demand path of [`RowMode::Recompute`].
    fn recompute_clean_row<R: Recorder>(&mut self, r: usize, rec: &mut R) -> Vec<Score> {
        rec.phase_start(Phase::RowRecompute);
        let (prefix, suffix) = self.seq.split(r);
        let last = match self.config.stripe {
            Some(w) => sw_last_row_striped(prefix, suffix, self.scoring, NoMask, w),
            None => sw_last_row(prefix, suffix, self.scoring, NoMask),
        };
        self.stats.record_row_recompute(last.cells);
        rec.phase_end(Phase::RowRecompute);
        last.row
    }

    /// The stale-pop sweep routed through the incremental layer:
    /// first passes sweep fully (and seed memo + checkpoints),
    /// realignments skip or resume below the dirty boundary.
    /// Bit-identical to the from-scratch sweep in all cases.
    fn incremental_sweep<R: Recorder>(
        &mut self,
        task: &Task,
        first_pass: bool,
        sweep_phase: Phase,
        rec: &mut R,
    ) -> TaskResult {
        // Recompute-mode original row, before borrowing the sweeper.
        let clean = match self.config.row_mode {
            RowMode::Recompute if !first_pass => Some(self.recompute_clean_row(task.r, rec)),
            _ => None,
        };
        let version = self.dirty.version();
        let incr = self.incr.as_mut().expect("caller checked incr.is_some()");
        rec.phase_start(sweep_phase);
        let result = if first_pass {
            incr.first_pass(self.seq, self.scoring, task.r, &self.triangle, version)
        } else {
            let original = match &clean {
                Some(row) => &row[..],
                None => self
                    .bottom
                    .as_ref()
                    .expect("store mode keeps rows")
                    .get(task.r)
                    .expect("realignment implies a stored first-pass row"),
            };
            let sweep = incr.realign(
                self.seq,
                self.scoring,
                task.r,
                &self.triangle,
                original,
                &self.dirty,
                version,
            );
            self.stats.checkpoint_hits += u64::from(sweep.hit());
            self.stats.checkpoint_misses += u64::from(!sweep.hit());
            self.stats.realign_rows_swept += sweep.rows_swept;
            self.stats.realign_rows_skipped += sweep.rows_skipped;
            rec.observe(Metric::ResumeRows, sweep.rows_swept);
            sweep.result
        };
        rec.phase_end(sweep_phase);
        result
    }

    /// Top alignments accepted so far.
    pub fn alignments(&self) -> &[TopAlignment] {
        &self.alignments
    }

    /// Work counters so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The override triangle in its current state.
    pub fn triangle(&self) -> &OverrideTriangle {
        &self.triangle
    }

    /// Execute one scheduling decision (Figure 5's loop body).
    pub fn step(&mut self) -> Step {
        self.step_recorded(&mut NoopRecorder)
    }

    /// [`Self::step`] with instrumentation: phase spans around the
    /// alignment kernels, stale/fresh pop accounting, latency histogram
    /// samples and a progress heartbeat per pop. The recorder is a
    /// monomorphized generic — with [`NoopRecorder`] this compiles to
    /// exactly the uninstrumented loop (the clock reads and snapshot
    /// construction are gated on [`Recorder::ENABLED`]).
    pub fn step_recorded<R: Recorder>(&mut self, rec: &mut R) -> Step {
        let t0 = R::ENABLED.then(Instant::now);
        let step = self.step_inner(rec);
        if R::ENABLED {
            if let Some(t0) = t0 {
                if !matches!(step, Step::Done) {
                    rec.observe(Metric::TaskRoundTripNs, t0.elapsed().as_nanos() as u64);
                }
            }
            let splits_total = self.seq.len().saturating_sub(1) as u64;
            rec.progress(&Progress {
                splits_done: self.first_passes as u64,
                splits_total,
                splits_pruned: splits_total.saturating_sub(self.first_passes as u64),
                realignments_avoided: self.stats.pruned_pops + self.stats.checkpoint_hits,
                tops_found: self.alignments.len() as u64,
                tops_requested: self.config.count as u64,
            });
        }
        step
    }

    fn step_inner<R: Recorder>(&mut self, rec: &mut R) -> Step {
        if self.alignments.len() >= self.config.count {
            return Step::Done;
        }
        let Some(task) = self.queue.pop() else {
            return Step::Done;
        };
        if task.score <= 0 {
            // The head is an upper bound for every queued task: nothing
            // positive remains anywhere.
            return Step::Done;
        }
        let tops_found = self.alignments.len();
        // Bound-fresh fast path: a never-aligned head whose seed bound
        // has tightened since it was queued re-enters at the tighter
        // bound without any sweep. (Bounds only ever decrease, so the
        // queued entry was admissible all along; this just avoids
        // aligning a split the tightened bound may keep buried forever.)
        if let Some(bounds) = &self.bounds {
            if task.aligned_with == NEVER_ALIGNED {
                let bound = bounds.bound(task.r);
                if bound < task.score {
                    self.stats.pruned_pops += 1;
                    // How far the stale bound overshot the fresh one —
                    // the slack pruning had to work with.
                    rec.observe(Metric::PruneSlack, (task.score - bound) as u64);
                    self.queue.push(Task {
                        r: task.r,
                        score: bound,
                        aligned_with: NEVER_ALIGNED,
                    });
                    return Step::Pruned { r: task.r, bound };
                }
            }
        }
        if task.is_fresh(tops_found) {
            self.stats.fresh_pops += 1;
            let index = tops_found;
            let (top, cells) = match self.config.row_mode {
                RowMode::Store => {
                    rec.phase_start(Phase::Traceback);
                    let original = self
                        .bottom
                        .as_ref()
                        .expect("store mode keeps rows")
                        .get(task.r)
                        .expect("accepted split must have a stored row");
                    let out = accept_task_with_row(
                        self.seq,
                        self.scoring,
                        task.r,
                        task.score,
                        &mut self.triangle,
                        original,
                        index,
                    );
                    rec.phase_end(Phase::Traceback);
                    out
                }
                RowMode::Recompute => {
                    let clean = self.recompute_clean_row(task.r, rec);
                    rec.phase_start(Phase::Traceback);
                    let out = accept_task_with_row(
                        self.seq,
                        self.scoring,
                        task.r,
                        task.score,
                        &mut self.triangle,
                        &clean,
                        index,
                    );
                    rec.phase_end(Phase::Traceback);
                    out
                }
            };
            self.stats.record_traceback(cells);
            if self.incr.is_some() {
                self.dirty.record_accept(&top.pairs);
            }
            // Tighten the seed bounds under the grown triangle instead
            // of resetting anything to infinity. Once every split has
            // first-passed, never-aligned tasks no longer exist and the
            // bounds can't influence the schedule — skip the resweep
            // (this is what keeps repeat-dense inputs at parity).
            if let Some(bounds) = self.bounds.as_mut() {
                let splits = self.seq.len().saturating_sub(1);
                if self.first_passes < splits {
                    if let Some(&(p, _)) = top.pairs.first() {
                        bounds.recompute(self.seq.codes(), self.scoring, &self.triangle, p);
                    }
                }
            }
            let (r, score) = (top.r, top.score);
            self.alignments.push(top);
            // Requeue (Figure 5 line 20): the task keeps its old score as
            // an upper bound and is stale against the grown triangle.
            self.queue.push(Task {
                r: task.r,
                score: task.score,
                aligned_with: task.aligned_with,
            });
            Step::Accepted { r, score }
        } else {
            self.stats.stale_pops += 1;
            let first_pass = task.aligned_with == NEVER_ALIGNED;
            self.first_passes += usize::from(first_pass);
            let sweep_phase = if first_pass {
                Phase::FirstSweep
            } else {
                Phase::Drain
            };
            let sweep_t0 = R::ENABLED.then(Instant::now);
            let result = if first_pass && !self.triangle.is_empty() {
                // Late first pass — only reachable with seed pruning,
                // which can delay a split's first sweep past an accept.
                // The stored row must be the *clean* first-pass row
                // (the shadow filter's reference), but the task's score
                // must reflect the current mask: sweep clean, then
                // masked, shadow-filtering like a realignment.
                rec.phase_start(sweep_phase);
                let (prefix, suffix) = self.seq.split(task.r);
                let clean = match self.config.stripe {
                    Some(w) => sw_last_row_striped(prefix, suffix, self.scoring, NoMask, w),
                    None => sw_last_row(prefix, suffix, self.scoring, NoMask),
                };
                let masked = align_task(
                    self.seq,
                    self.scoring,
                    task.r,
                    &self.triangle,
                    Some(&clean.row),
                    self.config.stripe,
                );
                let out = TaskResult {
                    score: masked.score,
                    col: masked.col,
                    cells: clean.cells + masked.cells,
                    first_row: Some(clean.row),
                    shadow_rejections: masked.shadow_rejections,
                };
                rec.phase_end(sweep_phase);
                out
            } else if self.incr.is_some() {
                self.incremental_sweep(&task, first_pass, sweep_phase, rec)
            } else {
                match self.config.row_mode {
                    RowMode::Store => {
                        let original = self
                            .bottom
                            .as_ref()
                            .expect("store mode keeps rows")
                            .get(task.r);
                        debug_assert_eq!(original.is_none(), first_pass);
                        rec.phase_start(sweep_phase);
                        let out = align_task(
                            self.seq,
                            self.scoring,
                            task.r,
                            &self.triangle,
                            original,
                            self.config.stripe,
                        );
                        rec.phase_end(sweep_phase);
                        out
                    }
                    RowMode::Recompute if first_pass => {
                        rec.phase_start(sweep_phase);
                        let out = align_task(
                            self.seq,
                            self.scoring,
                            task.r,
                            &self.triangle,
                            None,
                            self.config.stripe,
                        );
                        rec.phase_end(sweep_phase);
                        out
                    }
                    RowMode::Recompute => {
                        let clean = self.recompute_clean_row(task.r, rec);
                        rec.phase_start(sweep_phase);
                        let out = align_task(
                            self.seq,
                            self.scoring,
                            task.r,
                            &self.triangle,
                            Some(&clean),
                            self.config.stripe,
                        );
                        rec.phase_end(sweep_phase);
                        out
                    }
                }
            };
            if let Some(t0) = sweep_t0 {
                rec.observe(Metric::SweepNs, t0.elapsed().as_nanos() as u64);
            }
            if let Some(row) = result.first_row {
                if let Some(bottom) = self.bottom.as_mut() {
                    bottom.store(task.r, &row);
                }
                // First-pass rows come out of the sweeper's scratch pool
                // when the incremental layer is on; recycle them once
                // they have been copied into the store.
                if let Some(incr) = self.incr.as_mut() {
                    incr.reclaim(row);
                }
            }
            // Holds for realignments (masking monotonicity) *and* first
            // passes (∞ without seeding; the admissible seed bound with
            // it) — the live end-to-end admissibility check.
            debug_assert!(
                result.score <= task.score,
                "sweep of split {} rose above its queued upper bound",
                task.r
            );
            self.stats.shadow_rejections += result.shadow_rejections;
            self.stats.record_alignment(result.cells, tops_found);
            self.queue.push(Task {
                r: task.r,
                score: result.score,
                aligned_with: tops_found,
            });
            Step::Realigned {
                r: task.r,
                score: result.score,
            }
        }
    }

    /// Run to completion and return the result.
    pub fn run(self) -> TopAlignments {
        self.run_recorded(&mut NoopRecorder)
    }

    /// [`Self::run`] with instrumentation (see [`Self::step_recorded`]).
    pub fn run_recorded<R: Recorder>(mut self, rec: &mut R) -> TopAlignments {
        while !matches!(self.step_recorded(rec), Step::Done) {}
        if let Some(incr) = &self.incr {
            self.stats.pool_reuses = incr.pool_reuses();
            rec.add(Counter::CheckpointHits, self.stats.checkpoint_hits);
            rec.add(Counter::CheckpointMisses, self.stats.checkpoint_misses);
            rec.add(Counter::RealignRowsSwept, self.stats.realign_rows_swept);
            rec.add(Counter::RealignRowsSkipped, self.stats.realign_rows_skipped);
            rec.add(Counter::PoolReuses, self.stats.pool_reuses);
        }
        if let Some(bounds) = &self.bounds {
            let splits = self.seq.len().saturating_sub(1);
            self.stats.splits_pruned = splits.saturating_sub(self.first_passes) as u64;
            self.stats.bound_recomputes = bounds.recomputes();
            rec.add(Counter::SplitsPruned, self.stats.splits_pruned);
            rec.add(Counter::PrunedPops, self.stats.pruned_pops);
            rec.add(Counter::BoundRecomputes, self.stats.bound_recomputes);
            rec.add(Counter::SeedIndexBuildNs, self.stats.seed_index_build_ns);
        }
        TopAlignments {
            alignments: self.alignments,
            stats: self.stats,
            triangle: self.triangle,
        }
    }
}

/// One-shot convenience: find `count` top alignments of `seq`.
///
/// ```
/// use repro_core::find_top_alignments;
/// use repro_align::{Scoring, Seq};
///
/// // The paper's Figure 4 example has three top alignments of score 8.
/// let seq = Seq::dna("ATGCATGCATGC").unwrap();
/// let tops = find_top_alignments(&seq, &Scoring::dna_example(), 3);
/// assert_eq!(tops.alignments.len(), 3);
/// assert!(tops.alignments.iter().all(|t| t.score == 8));
/// assert_eq!(tops.alignments[0].pairs, vec![(0, 4), (1, 5), (2, 6), (3, 7)]);
/// ```
pub fn find_top_alignments(seq: &Seq, scoring: &Scoring, count: usize) -> TopAlignments {
    TopAlignmentFinder::new(seq, scoring, FinderConfig::new(count)).run()
}

/// [`find_top_alignments`] with a recorder capturing phase timings and
/// pop/shadow accounting (see [`TopAlignmentFinder::step_recorded`]).
pub fn find_top_alignments_recorded<R: Recorder>(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    rec: &mut R,
) -> TopAlignments {
    TopAlignmentFinder::new(seq, scoring, FinderConfig::new(count)).run_recorded(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repro_align::Alphabet;

    fn atgc_scoring() -> Scoring {
        Scoring::dna_example()
    }

    /// The paper's Figure 4 example: ATGCATGCATGC has three equivalent
    /// top alignments of score 8 (4 exact ATGC matches each).
    #[test]
    fn figure4_three_top_alignments() {
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let result = find_top_alignments(&seq, &atgc_scoring(), 3);
        assert_eq!(result.alignments.len(), 3);

        let t1 = &result.alignments[0];
        assert_eq!((t1.r, t1.score), (4, 8));
        assert_eq!(t1.pairs, vec![(0, 4), (1, 5), (2, 6), (3, 7)]);

        let t2 = &result.alignments[1];
        assert_eq!((t2.r, t2.score), (4, 8));
        assert_eq!(t2.pairs, vec![(0, 8), (1, 9), (2, 10), (3, 11)]);

        let t3 = &result.alignments[2];
        assert_eq!((t3.r, t3.score), (8, 8));
        assert_eq!(t3.pairs, vec![(4, 8), (5, 9), (6, 10), (7, 11)]);
    }

    #[test]
    fn top_alignments_never_overlap() {
        let seq = Seq::dna("ATGCATGCATGCATGCATGC").unwrap();
        let result = find_top_alignments(&seq, &atgc_scoring(), 6);
        let mut seen = std::collections::HashSet::new();
        for top in &result.alignments {
            for &pair in &top.pairs {
                assert!(
                    seen.insert(pair),
                    "pair {pair:?} appears in two top alignments"
                );
            }
        }
        assert_eq!(result.triangle.len(), seen.len());
    }

    #[test]
    fn scores_are_non_increasing() {
        let seq = Seq::dna("ACGTTGCAACGTACGTTGCAGGTT").unwrap();
        let result = find_top_alignments(&seq, &atgc_scoring(), 8);
        for w in result.alignments.windows(2) {
            assert!(
                w[0].score >= w[1].score,
                "top alignments must come out best-first"
            );
        }
    }

    #[test]
    fn exhaustion_returns_fewer_alignments() {
        // A sequence with almost no internal similarity: requesting many
        // tops must terminate early rather than loop or panic.
        let seq = Seq::dna("ACGT").unwrap();
        let result = find_top_alignments(&seq, &atgc_scoring(), 10);
        assert!(result.alignments.len() < 10);
        for top in &result.alignments {
            assert!(top.score > 0);
        }
    }

    #[test]
    fn no_positive_alignment_at_all() {
        // All-distinct residues: every off-diagonal pair mismatches.
        let seq = Seq::protein("ARNDCQEGHILKMFPSTWYV").unwrap();
        let scoring = Scoring::new(
            repro_align::ExchangeMatrix::match_mismatch(Alphabet::Protein, 2, -1),
            repro_align::GapPenalties::new(2, 1),
        );
        let result = find_top_alignments(&seq, &scoring, 5);
        assert!(result.alignments.is_empty());
        assert!(result.triangle.is_empty());
    }

    #[test]
    fn pairs_straddle_the_split() {
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let result = find_top_alignments(&seq, &atgc_scoring(), 3);
        for top in &result.alignments {
            for &(p, q) in &top.pairs {
                assert!(p < top.r, "prefix side of pair out of range");
                assert!(q >= top.r, "suffix side of pair out of range");
                assert!(q < seq.len());
            }
        }
    }

    #[test]
    fn striped_kernel_gives_identical_results() {
        let seq = Seq::dna("ATGCATGCATGCAATTGGCCATGC").unwrap();
        let plain = find_top_alignments(&seq, &atgc_scoring(), 5);
        let striped = TopAlignmentFinder::new(
            &seq,
            &atgc_scoring(),
            FinderConfig {
                stripe: Some(3),
                ..FinderConfig::new(5)
            },
        )
        .run();
        assert_eq!(plain.alignments, striped.alignments);
    }

    /// Golden trace of Figure 5's scheduling on the Figure 4 example:
    /// every split aligns once (initial ∞ priorities), the best split is
    /// accepted, and between acceptances only the provably-necessary
    /// splits realign.
    #[test]
    fn figure5_scheduling_golden_trace() {
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let scoring = atgc_scoring();
        let mut finder = TopAlignmentFinder::new(&seq, &scoring, FinderConfig::new(3));
        let mut trace = Vec::new();
        loop {
            let step = finder.step();
            if matches!(step, Step::Done) {
                break;
            }
            trace.push(step);
        }
        // Phase 1: the 11 first passes (splits pop in descending-r order
        // among equal ∞ priorities? no — ties break on smaller r).
        let first_passes: Vec<usize> = trace[..11]
            .iter()
            .map(|s| match s {
                Step::Realigned { r, .. } => *r,
                other => panic!("expected realignment, got {other:?}"),
            })
            .collect();
        assert_eq!(first_passes, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        // Acceptance 1: split 4 at score 8, directly off the sweep (all
        // sweep scores are fresh, so the head needs no realignment).
        assert_eq!(trace[11], Step::Accepted { r: 4, score: 8 });
        // Acceptance 2: split 4 again (the second ATGC block), after a
        // single freshness realignment.
        assert_eq!(trace[12], Step::Realigned { r: 4, score: 8 });
        assert_eq!(trace[13], Step::Accepted { r: 4, score: 8 });
        // Acceptance 3: split 8, after realigning only the five splits
        // whose stale upper bounds (8) tie the winner.
        let realigned: Vec<usize> = trace[14..trace.len() - 1]
            .iter()
            .map(|s| match s {
                Step::Realigned { r, .. } => *r,
                other => panic!("expected realignment, got {other:?}"),
            })
            .collect();
        assert_eq!(realigned, vec![4, 5, 6, 7, 8]);
        assert_eq!(*trace.last().unwrap(), Step::Accepted { r: 8, score: 8 });
    }

    /// Known-answer recorder totals on the Figure 4 example: the golden
    /// trace above fixes the schedule (11 first passes, acceptance,
    /// 1 drain realignment, acceptance, 5 drain realignments,
    /// acceptance), so every span entry count and pop counter is exact.
    #[test]
    fn recorder_known_answer_totals() {
        use repro_obs::FlightRecorder;
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let mut rec = FlightRecorder::new();
        let result = find_top_alignments_recorded(&seq, &atgc_scoring(), 3, &mut rec);
        assert_eq!(result.alignments.len(), 3);
        // Pops: 11 first passes + 6 drain realignments are stale, the
        // 3 acceptances are fresh.
        assert_eq!(result.stats.stale_pops, 17);
        assert_eq!(result.stats.fresh_pops, 3);
        assert_eq!(result.stats.alignments, 17);
        assert_eq!(result.stats.tracebacks, 3);
        // Span entry counts mirror the pops exactly.
        assert_eq!(rec.phase_entries(Phase::FirstSweep), 11);
        assert_eq!(rec.phase_entries(Phase::Drain), 6);
        assert_eq!(rec.phase_entries(Phase::Traceback), 3);
        assert_eq!(rec.phase_entries(Phase::RowRecompute), 0);
        assert!(rec.phase_secs(Phase::FirstSweep) > 0.0);
        assert!(rec.phase_secs(Phase::Traceback) > 0.0);
        // Realignments after an acceptance hit the shadow filter.
        assert!(result.stats.shadow_rejections > 0);
        // Histogram samples mirror the pops: one sweep per stale pop,
        // one round trip per pop of any kind.
        use repro_obs::Metric;
        assert_eq!(rec.hist(Metric::SweepNs).count(), 17);
        assert_eq!(rec.hist(Metric::TaskRoundTripNs).count(), 20);
        assert!(rec.hist(Metric::SweepNs).sum() > 0);
        assert!(rec.hist(Metric::SweepNs).p99() >= rec.hist(Metric::SweepNs).p50());
        // No seeding and no checkpointing in this config.
        assert_eq!(rec.hist(Metric::PruneSlack).count(), 0);
        assert_eq!(rec.hist(Metric::ResumeRows).count(), 0);
        // The recorded run is the same computation: identical output and
        // stats as the unrecorded entry point.
        let plain = find_top_alignments(&seq, &atgc_scoring(), 3);
        assert_eq!(plain.alignments, result.alignments);
        assert_eq!(plain.stats, result.stats);
    }

    #[test]
    fn recorder_sees_row_recompute_phase_in_linear_memory_mode() {
        use repro_obs::FlightRecorder;
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let scoring = atgc_scoring();
        let mut rec = FlightRecorder::new();
        let result = TopAlignmentFinder::new(&seq, &scoring, FinderConfig::linear_memory(3))
            .run_recorded(&mut rec);
        assert_eq!(result.alignments.len(), 3);
        assert_eq!(
            rec.phase_entries(Phase::RowRecompute),
            result.stats.row_recomputations
        );
        assert!(rec.phase_entries(Phase::RowRecompute) > 0);
    }

    #[test]
    fn top_alignment_helpers() {
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let result = find_top_alignments(&seq, &atgc_scoring(), 1);
        let top = &result.alignments[0];
        assert_eq!(top.cigar(), "4M");
        assert_eq!(top.prefix_span(), Some(0..4));
        assert_eq!(top.suffix_span(), Some(4..8));
        assert_eq!(top.identity(&seq), 1.0);
    }

    #[test]
    fn all_tasks_aligned_before_first_acceptance() {
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let scoring = atgc_scoring();
        let mut finder = TopAlignmentFinder::new(&seq, &scoring, FinderConfig::new(1));
        let mut realigned = 0;
        loop {
            match finder.step() {
                Step::Realigned { .. } => realigned += 1,
                Step::Accepted { .. } => break,
                other => panic!("should accept one top alignment, got {other:?}"),
            }
        }
        // All m−1 = 11 splits align once before the first acceptance.
        assert_eq!(realigned, 11);
        assert_eq!(finder.stats().realignments_per_top, vec![11]);
    }

    #[test]
    fn realignment_fraction_is_small_on_repetitive_input() {
        let seq = Seq::dna(&"ATGC".repeat(20)).unwrap();
        let result = find_top_alignments(&seq, &atgc_scoring(), 10);
        assert_eq!(result.alignments.len(), 10);
        let frac = result.stats.realignment_fraction(seq.len() - 1);
        assert!(
            frac < 0.5,
            "queue heuristic should skip most realignments, got {frac}"
        );
    }

    #[test]
    fn stats_count_tracebacks() {
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let result = find_top_alignments(&seq, &atgc_scoring(), 3);
        assert_eq!(result.stats.tracebacks, 3);
        assert!(result.stats.traceback_cells > 0);
        assert!(result.stats.alignments >= 11);
    }

    #[test]
    fn empty_and_tiny_sequences() {
        let scoring = atgc_scoring();
        for text in ["", "A", "AC"] {
            let seq = Seq::dna(text).unwrap();
            let result = find_top_alignments(&seq, &scoring, 3);
            assert!(result.alignments.len() <= 1, "input {text:?}");
        }
        // "AA" has one split: A vs A, score 2.
        let seq = Seq::dna("AA").unwrap();
        let result = find_top_alignments(&seq, &scoring, 3);
        assert_eq!(result.alignments.len(), 1);
        assert_eq!(result.alignments[0].pairs, vec![(0, 1)]);
    }

    #[test]
    fn linear_memory_mode_matches_default() {
        // Appendix A's linear-memory option (sparse triangle + on-demand
        // row recomputation) must find the exact same alignments, paying
        // extra recomputation work.
        let scoring = atgc_scoring();
        for text in ["ATGCATGCATGC", "ACGTTGCAACGTACGTTGCAGGTT", "AAAAAAAAAA"] {
            let seq = Seq::dna(text).unwrap();
            let default = find_top_alignments(&seq, &scoring, 5);
            let linmem =
                TopAlignmentFinder::new(&seq, &scoring, FinderConfig::linear_memory(5)).run();
            assert_eq!(default.alignments, linmem.alignments, "on {text}");
            assert_eq!(default.triangle, linmem.triangle);
            assert!(linmem.triangle.is_sparse());
            if !linmem.alignments.is_empty() {
                assert!(
                    linmem.stats.row_recomputations > 0,
                    "recompute mode must actually recompute rows"
                );
                assert_eq!(default.stats.row_recomputations, 0);
            }
        }
    }

    #[test]
    fn recompute_mode_alone_matches_default() {
        let scoring = atgc_scoring();
        let seq = Seq::dna(&"ATGC".repeat(12)).unwrap();
        let default = find_top_alignments(&seq, &scoring, 8);
        let cfg = FinderConfig {
            row_mode: RowMode::Recompute,
            ..FinderConfig::new(8)
        };
        let recompute = TopAlignmentFinder::new(&seq, &scoring, cfg).run();
        assert_eq!(default.alignments, recompute.alignments);
        // Work accounting: the scheduled alignment passes are identical;
        // only the extra recompute passes differ.
        assert_eq!(default.stats.alignments, recompute.stats.alignments);
        assert!(recompute.stats.row_recompute_cells > 0);
    }

    #[test]
    fn sparse_triangle_alone_matches_default() {
        let scoring = atgc_scoring();
        let seq = Seq::dna(&"ACGGT".repeat(10)).unwrap();
        let default = find_top_alignments(&seq, &scoring, 6);
        let cfg = FinderConfig {
            sparse_triangle: true,
            ..FinderConfig::new(6)
        };
        let sparse = TopAlignmentFinder::new(&seq, &scoring, cfg).run();
        assert_eq!(default.alignments, sparse.alignments);
        assert_eq!(default.triangle, sparse.triangle);
    }

    #[test]
    fn count_zero_returns_immediately() {
        let seq = Seq::dna("ATGCATGC").unwrap();
        let result = find_top_alignments(&seq, &atgc_scoring(), 0);
        assert!(result.alignments.is_empty());
        assert_eq!(result.stats.alignments, 0);
    }

    /// The incremental realignment layer must be invisible in the
    /// output: identical alignments, triangle, and schedule-sensitive
    /// stats at every budget — including 0, where every sweep misses.
    #[test]
    fn checkpointing_matches_default_bit_for_bit() {
        let scoring = atgc_scoring();
        for text in [
            "ATGCATGCATGC".to_string(),
            "ACGTTGCAACGTACGTTGCAGGTT".to_string(),
            "ATGC".repeat(20),
            "AAAAAAAAAA".to_string(),
        ] {
            let seq = Seq::dna(&text).unwrap();
            let base = find_top_alignments(&seq, &scoring, 10);
            for budget in [0usize, 4096, repro_align::DEFAULT_CHECKPOINT_BUDGET] {
                let cfg = FinderConfig::checkpointed(10, budget);
                let incr = TopAlignmentFinder::new(&seq, &scoring, cfg).run();
                assert_eq!(
                    base.alignments, incr.alignments,
                    "budget {budget} on {text}"
                );
                assert_eq!(base.triangle, incr.triangle);
                // The schedule (and therefore every schedule-derived
                // count) is untouched; only cells may shrink.
                assert_eq!(base.stats.alignments, incr.stats.alignments);
                assert_eq!(base.stats.stale_pops, incr.stats.stale_pops);
                assert_eq!(base.stats.fresh_pops, incr.stats.fresh_pops);
                assert_eq!(
                    base.stats.realignments_per_top,
                    incr.stats.realignments_per_top
                );
                assert_eq!(
                    base.stats.shadow_rejections, incr.stats.shadow_rejections,
                    "budget {budget} on {text}"
                );
                assert!(incr.stats.cells <= base.stats.cells);
                // Every realignment is either a hit or a miss.
                let drains = incr.stats.stale_pops
                    - incr
                        .stats
                        .realignments_per_top
                        .first()
                        .copied()
                        .unwrap_or(0);
                assert_eq!(
                    incr.stats.checkpoint_hits + incr.stats.checkpoint_misses,
                    drains
                );
                if budget == 0 {
                    assert_eq!(incr.stats.checkpoint_hits, 0);
                    assert_eq!(incr.stats.realign_rows_skipped, 0);
                }
            }
        }
    }

    /// On a sequence with *embedded* repeats (motifs at interior
    /// positions, the realistic shape), accepts dirty only a band of
    /// rows, so realignments full-skip or resume. A perfectly periodic
    /// sequence is the adversarial case — its top alignments all start
    /// at residue 0 and dirty every split from row 0.
    #[test]
    fn checkpointing_skips_rows_on_embedded_repeats() {
        let scoring = atgc_scoring();
        let motif = "ATGCATGCATGC";
        let text = format!("GGTTCCAA{motif}CCAAGGTT{motif}TGCATTGG");
        let seq = Seq::dna(&text).unwrap();
        let cfg = FinderConfig::checkpointed(10, repro_align::DEFAULT_CHECKPOINT_BUDGET);
        let result = TopAlignmentFinder::new(&seq, &scoring, cfg).run();
        assert!(!result.alignments.is_empty());
        assert!(result.stats.checkpoint_hits > 0, "no sweep was served");
        assert!(result.stats.realign_rows_skipped > 0);
        assert!(result.stats.pool_reuses > 0, "scratch pool never reused");
        assert!(result.stats.rows_skipped_fraction() > 0.0);
    }

    #[test]
    fn checkpointing_composes_with_linear_memory_mode() {
        let scoring = atgc_scoring();
        let seq = Seq::dna(&"ACGGT".repeat(10)).unwrap();
        let base = find_top_alignments(&seq, &scoring, 6);
        let cfg = FinderConfig {
            checkpoint_budget: Some(repro_align::DEFAULT_CHECKPOINT_BUDGET),
            ..FinderConfig::linear_memory(6)
        };
        let incr = TopAlignmentFinder::new(&seq, &scoring, cfg).run();
        assert_eq!(base.alignments, incr.alignments);
        assert_eq!(base.triangle, incr.triangle);
        assert!(incr.stats.row_recomputations > 0);
    }

    #[test]
    fn checkpointing_composes_with_striped_config() {
        // Stripe requests fall back to the plain kernel on the
        // incremental path; results must stay identical.
        let scoring = atgc_scoring();
        let seq = Seq::dna("ATGCATGCATGCAATTGGCCATGC").unwrap();
        let base = find_top_alignments(&seq, &scoring, 5);
        let cfg = FinderConfig {
            stripe: Some(3),
            ..FinderConfig::checkpointed(5, repro_align::DEFAULT_CHECKPOINT_BUDGET)
        };
        let incr = TopAlignmentFinder::new(&seq, &scoring, cfg).run();
        assert_eq!(base.alignments, incr.alignments);
    }

    /// The Figure 4 golden schedule survives checkpointing untouched,
    /// and the recorder's counters cross-check against `Stats` exactly
    /// (the PR 3 invariant, extended to the new counters).
    #[test]
    fn checkpointing_preserves_recorder_golden_totals() {
        use repro_obs::FlightRecorder;
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let mut rec = FlightRecorder::new();
        let cfg = FinderConfig::checkpointed(3, repro_align::DEFAULT_CHECKPOINT_BUDGET);
        let result = TopAlignmentFinder::new(&seq, &atgc_scoring(), cfg).run_recorded(&mut rec);
        assert_eq!(result.alignments.len(), 3);
        assert_eq!(result.stats.stale_pops, 17);
        assert_eq!(result.stats.fresh_pops, 3);
        assert_eq!(result.stats.alignments, 17);
        assert_eq!(rec.phase_entries(Phase::FirstSweep), 11);
        assert_eq!(rec.phase_entries(Phase::Drain), 6);
        assert_eq!(rec.phase_entries(Phase::Traceback), 3);
        assert_eq!(
            rec.counter(Counter::CheckpointHits),
            result.stats.checkpoint_hits
        );
        assert_eq!(
            rec.counter(Counter::CheckpointMisses),
            result.stats.checkpoint_misses
        );
        assert_eq!(
            rec.counter(Counter::RealignRowsSwept),
            result.stats.realign_rows_swept
        );
        assert_eq!(
            rec.counter(Counter::RealignRowsSkipped),
            result.stats.realign_rows_skipped
        );
        assert_eq!(rec.counter(Counter::PoolReuses), result.stats.pool_reuses);
        assert_eq!(
            result.stats.checkpoint_hits + result.stats.checkpoint_misses,
            6,
            "all six drain realignments route through the layer"
        );
        // Output identical to the plain engine.
        let plain = find_top_alignments(&seq, &atgc_scoring(), 3);
        assert_eq!(plain.alignments, result.alignments);
    }

    /// Seeded pruning must be invisible in the output: identical
    /// alignments and triangle on every input shape, whatever the k-mer
    /// width, including inputs that exhaust before `count`.
    #[test]
    fn seeded_pruning_is_output_invisible() {
        let scoring = atgc_scoring();
        let motif = "ATGCATGCATGC";
        for text in [
            "ATGCATGCATGC".to_string(),
            "ACGTTGCAACGTACGTTGCAGGTT".to_string(),
            "ATGC".repeat(20),
            "AAAAAAAAAA".to_string(),
            "ACGT".to_string(),
            format!("GGTTCCAACCGGTTAA{motif}CAGTCCGGAATTCCGG{motif}TTGGACCA"),
        ] {
            let seq = Seq::dna(&text).unwrap();
            let base = find_top_alignments(&seq, &scoring, 10);
            for k in [3usize, 6] {
                let cfg = FinderConfig::seeded(10, crate::seed::SeedConfig::new(k));
                let pruned = TopAlignmentFinder::new(&seq, &scoring, cfg).run();
                assert_eq!(base.alignments, pruned.alignments, "k {k} on {text}");
                assert_eq!(base.triangle, pruned.triangle, "k {k} on {text}");
                // Pop accounting: the three buckets partition all pops.
                assert_eq!(base.stats.fresh_pops, pruned.stats.fresh_pops);
            }
        }
    }

    /// On a low-repeat input with a small requested count, splits whose
    /// seed bound stays below every accepted score are never aligned.
    #[test]
    fn seeded_pruning_skips_splits_on_low_repeat_input() {
        let scoring = atgc_scoring();
        let motif = "ATGCATGCATGC";
        let text = format!("GGTTCCAACCGGTTAACCAGTGCA{motif}{motif}CAGTCCGGAATTCCGGTAACCGT");
        let seq = Seq::dna(&text).unwrap();
        let base = find_top_alignments(&seq, &scoring, 1);
        let cfg = FinderConfig::seeded(1, crate::seed::SeedConfig::default());
        let pruned = TopAlignmentFinder::new(&seq, &scoring, cfg).run();
        assert_eq!(base.alignments, pruned.alignments);
        assert!(
            pruned.stats.splits_pruned > 0,
            "no split was pruned on a low-repeat input"
        );
        // Pruned splits performed no sweep: alignment passes + pruned
        // splits cover all splits at most once before the accept.
        let splits = (seq.len() - 1) as u64;
        let first_passes = pruned.stats.realignments_per_top.first().copied().unwrap_or(0);
        assert_eq!(first_passes + pruned.stats.splits_pruned, splits);
        assert!(pruned.stats.seed_index_build_ns > 0);
    }

    /// Seeding composes with the incremental checkpoint layer and the
    /// linear-memory configuration, still bit-identical.
    #[test]
    fn seeded_pruning_composes_with_other_configs() {
        let scoring = atgc_scoring();
        let motif = "ATGCATGCATGC";
        let text = format!("GGTTCCAACC{motif}GGTTAACCAGT{motif}GCACAGTCCGG");
        let seq = Seq::dna(&text).unwrap();
        let base = find_top_alignments(&seq, &scoring, 4);
        let seeded = crate::seed::SeedConfig::default();
        let combos = [
            FinderConfig {
                checkpoint_budget: Some(repro_align::DEFAULT_CHECKPOINT_BUDGET),
                ..FinderConfig::seeded(4, seeded)
            },
            FinderConfig {
                seed: Some(seeded),
                ..FinderConfig::linear_memory(4)
            },
            FinderConfig {
                stripe: Some(3),
                ..FinderConfig::seeded(4, seeded)
            },
        ];
        for cfg in combos {
            let got = TopAlignmentFinder::new(&seq, &scoring, cfg.clone()).run();
            assert_eq!(base.alignments, got.alignments, "config {cfg:?}");
            assert_eq!(base.triangle, got.triangle, "config {cfg:?}");
        }
    }

    /// The recorder sees the prune counters exactly as `Stats` does.
    #[test]
    fn seeded_counters_reach_the_recorder() {
        use repro_obs::FlightRecorder;
        let scoring = atgc_scoring();
        let motif = "ATGCATGCATGC";
        let text = format!("GGTTCCAACCGGTTAACCAGTGCA{motif}{motif}CAGTCCGGAATTCCGGTAACCGT");
        let seq = Seq::dna(&text).unwrap();
        let mut rec = FlightRecorder::new();
        let cfg = FinderConfig::seeded(1, crate::seed::SeedConfig::default());
        let result = TopAlignmentFinder::new(&seq, &scoring, cfg).run_recorded(&mut rec);
        assert_eq!(rec.counter(Counter::SplitsPruned), result.stats.splits_pruned);
        assert_eq!(rec.counter(Counter::PrunedPops), result.stats.pruned_pops);
        assert_eq!(
            rec.counter(Counter::BoundRecomputes),
            result.stats.bound_recomputes
        );
        assert_eq!(
            rec.counter(Counter::SeedIndexBuildNs),
            result.stats.seed_index_build_ns
        );
    }

    /// Differential oracle: each accepted alignment's score must equal an
    /// independent masked alignment of its split computed from scratch,
    /// and its pairs must rescore to exactly that value.
    #[test]
    fn accepted_scores_match_independent_recomputation() {
        let seq = Seq::dna("ATGCAATGCATTTGCATGCA").unwrap();
        let scoring = atgc_scoring();
        let result = find_top_alignments(&seq, &scoring, 4);
        let mut triangle = OverrideTriangle::new(seq.len());
        for top in &result.alignments {
            // Recompute the split alignment under the triangle as of the
            // moment this top was accepted.
            let (prefix, suffix) = seq.split(top.r);
            let mask = SplitMask::new(&triangle, top.r);
            let last = sw_last_row(prefix, suffix, &scoring, mask);
            assert!(
                top.score <= last.best_in_row,
                "accepted score exceeds what the split can produce"
            );
            for &(p, q) in &top.pairs {
                triangle.set(p, q);
            }
        }
    }
}
