//! Consensus of delineated repeat units.
//!
//! Completes the Repro pipeline's second half: once units are
//! delineated (see [`crate::delineate()`]), a star-topology multiple
//! alignment against a reference unit produces a majority-vote
//! **consensus** of the ancestral repeat and per-unit identities —
//! the "preserved sensitivity" output the paper's §6 aims the method
//! at. The reference is the median-length unit (robust against a
//! truncated first or last copy); every unit is globally aligned to it
//! with the affine-gap Needleman–Wunsch kernel.

use crate::delineate::RepeatUnit;
use repro_align::kernel::nw::{nw_align, NwOp};
use repro_align::{Scoring, Seq};

/// Majority-vote consensus over repeat units.
#[derive(Debug, Clone, PartialEq)]
pub struct Consensus {
    /// The consensus sequence (one residue per reference column that a
    /// majority of units cover).
    pub consensus: Seq,
    /// Per-unit identity against the consensus, in unit order.
    pub unit_identities: Vec<f64>,
}

impl Consensus {
    /// Mean identity of the units against the consensus.
    pub fn mean_identity(&self) -> f64 {
        if self.unit_identities.is_empty() {
            0.0
        } else {
            self.unit_identities.iter().sum::<f64>() / self.unit_identities.len() as f64
        }
    }
}

/// Build the consensus of `units` within `seq`. Returns `None` when no
/// unit is non-empty.
pub fn unit_consensus(seq: &Seq, units: &[RepeatUnit], scoring: &Scoring) -> Option<Consensus> {
    let unit_codes: Vec<&[u8]> = units
        .iter()
        .filter(|u| !u.range.is_empty())
        .map(|u| &seq.codes()[u.range.clone()])
        .collect();
    if unit_codes.is_empty() {
        return None;
    }

    // Reference: the median-length unit (first among ties).
    let mut by_len: Vec<usize> = (0..unit_codes.len()).collect();
    by_len.sort_by_key(|&i| (unit_codes[i].len(), i));
    let ref_idx = by_len[by_len.len() / 2];
    let reference = unit_codes[ref_idx];
    let k = seq.alphabet().len();

    // Column votes: counts[col][residue].
    let mut counts = vec![vec![0u32; k]; reference.len()];
    let mut coverage = vec![0u32; reference.len()];
    for unit in &unit_codes {
        let al = nw_align(unit, reference, scoring);
        for op in &al.ops {
            if let NwOp::Pair(y, x) = *op {
                counts[x][unit[y] as usize] += 1;
                coverage[x] += 1;
            }
        }
    }

    // Majority vote per covered column; drop columns most units gap out.
    let quorum = (unit_codes.len() as u32).div_ceil(2);
    let mut consensus_codes = Vec::with_capacity(reference.len());
    let mut kept_cols = Vec::with_capacity(reference.len());
    for (col, votes) in counts.iter().enumerate() {
        if coverage[col] < quorum {
            continue;
        }
        let best = votes
            .iter()
            .enumerate()
            .max_by(|(ia, va), (ib, vb)| va.cmp(vb).then(ib.cmp(ia)))
            .map(|(i, _)| i as u8)
            .expect("alphabet is non-empty");
        consensus_codes.push(best);
        kept_cols.push(col);
    }
    if consensus_codes.is_empty() {
        return None;
    }
    let consensus = Seq::from_codes(seq.alphabet(), consensus_codes);

    // Per-unit identity against the consensus (global alignment again,
    // counting identical pairs over consensus length).
    let unit_identities = unit_codes
        .iter()
        .map(|unit| {
            let al = nw_align(unit, consensus.codes(), scoring);
            let same = al
                .ops
                .iter()
                .filter(|op| matches!(op, NwOp::Pair(y, x) if unit[*y] == consensus.codes()[*x]))
                .count();
            same as f64 / consensus.len().max(1) as f64
        })
        .collect();

    Some(Consensus {
        consensus,
        unit_identities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delineate::delineate;
    use crate::finder::find_top_alignments;
    use repro_align::Alphabet;

    fn units_of(ranges: &[(usize, usize)]) -> Vec<RepeatUnit> {
        ranges
            .iter()
            .map(|&(a, b)| RepeatUnit { range: a..b })
            .collect()
    }

    #[test]
    fn exact_tandem_consensus_is_the_unit() {
        let seq = Seq::dna(&"ATGC".repeat(10)).unwrap();
        let units = units_of(&[(0, 4), (4, 8), (8, 12), (12, 16)]);
        let c = unit_consensus(&seq, &units, &Scoring::dna_example()).unwrap();
        assert_eq!(c.consensus.to_text(), "ATGC");
        assert!(c.unit_identities.iter().all(|&i| (i - 1.0).abs() < 1e-12));
        assert_eq!(c.mean_identity(), 1.0);
    }

    #[test]
    fn mutated_units_still_vote_out_the_ancestor() {
        // Units are copies of ACGGTACGTT with one substitution each at
        // different positions: majority voting recovers the ancestor.
        let ancestor = "ACGGTACGTT";
        let copies = ["TCGGTACGTT", "ACGTTACGTT", "ACGGTACATT", "ACGGTTCGTT"];
        let text: String = copies.concat();
        let seq = Seq::dna(&text).unwrap();
        let units = units_of(&[(0, 10), (10, 20), (20, 30), (30, 40)]);
        let c = unit_consensus(&seq, &units, &Scoring::dna_example()).unwrap();
        assert_eq!(c.consensus.to_text(), ancestor);
        for &id in &c.unit_identities {
            assert!((id - 0.9).abs() < 1e-9, "one substitution per 10 residues");
        }
    }

    #[test]
    fn length_variation_is_tolerated() {
        // Middle unit has an insertion; the reference is median-length.
        let seq = Seq::dna("ATGCATGGCATGC").unwrap();
        let units = units_of(&[(0, 4), (4, 9), (9, 13)]);
        let c = unit_consensus(&seq, &units, &Scoring::dna_example()).unwrap();
        assert_eq!(c.consensus.to_text(), "ATGC");
    }

    #[test]
    fn empty_units_yield_none() {
        let seq = Seq::dna("ATGC").unwrap();
        assert!(unit_consensus(&seq, &[], &Scoring::dna_example()).is_none());
        let empty = units_of(&[(2, 2)]);
        assert!(unit_consensus(&seq, &empty, &Scoring::dna_example()).is_none());
    }

    #[test]
    fn end_to_end_with_delineation() {
        // Full pipeline: top alignments → delineation → consensus, on a
        // planted repeat with known ancestor.
        let seq = Seq::dna(&"ACGGT".repeat(12)).unwrap();
        let scoring = Scoring::dna_example();
        let tops = find_top_alignments(&seq, &scoring, 10);
        let report = delineate(&seq, &tops.alignments);
        assert_eq!(report.period, Some(5));
        let c = unit_consensus(&seq, &report.units, &scoring).unwrap();
        assert_eq!(c.consensus.len(), 5);
        // The consensus is a rotation of ACGGT (phase is arbitrary) and
        // units match it perfectly.
        let doubled = "ACGGTACGGT";
        assert!(
            doubled.contains(&c.consensus.to_text()),
            "consensus {} is not a rotation of ACGGT",
            c.consensus
        );
        assert!(c.mean_identity() > 0.99);
    }

    #[test]
    fn single_unit_consensus_is_itself() {
        let seq = Seq::dna("ATGCATGC").unwrap();
        let units = units_of(&[(0, 8)]);
        let c = unit_consensus(&seq, &units, &Scoring::dna_example()).unwrap();
        assert_eq!(c.consensus.to_text(), "ATGCATGC");
        assert_eq!(c.unit_identities, vec![1.0]);
    }

    #[test]
    fn unrelated_units_yield_low_identity() {
        // Two completely different units: the consensus equals the
        // reference-ish majority, but identities stay split.
        let seq = Seq::dna("AAAAAAAATTTTTTTT").unwrap();
        let units = units_of(&[(0, 8), (8, 16)]);
        let c = unit_consensus(&seq, &units, &Scoring::dna_example()).unwrap();
        assert!(c.mean_identity() <= 1.0);
        // One of the two units cannot match whatever consensus wins.
        assert!(c.unit_identities.iter().any(|&i| i < 0.5));
    }

    #[test]
    fn median_length_reference_resists_an_outlier_unit() {
        // Three clean 3-mers plus one long junk-tailed unit: the median
        // picks a 3-mer as reference, so the junk never defines columns.
        let seq = Seq::dna("ATGATGATGATGCCCC").unwrap();
        let units = units_of(&[(0, 3), (3, 6), (6, 9), (9, 16)]);
        let c = unit_consensus(&seq, &units, &Scoring::dna_example()).unwrap();
        assert_eq!(c.consensus.to_text(), "ATG");
    }

    #[test]
    fn protein_units() {
        let unit = "MGEKALVPYR";
        let seq = Seq::protein(&unit.repeat(4)).unwrap();
        let units = units_of(&[(0, 10), (10, 20), (20, 30), (30, 40)]);
        let c = unit_consensus(&seq, &units, &Scoring::protein_default()).unwrap();
        assert_eq!(c.consensus.alphabet(), Alphabet::Protein);
        assert_eq!(c.consensus.to_text(), unit);
    }
}
