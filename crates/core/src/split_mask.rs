//! Adapter from the override triangle to a per-split kernel mask.
//!
//! Cell `(i, j)` of split `r`'s matrix aligns sequence positions `i`
//! (prefix) and `r + j` (suffix); the cell is overridden iff that
//! position pair is in the triangle. Because `i < r ≤ r + j` always
//! holds, the pair is automatically in canonical `(p < q)` order.

use crate::triangle::OverrideTriangle;
use repro_align::CellMask;

/// View of an [`OverrideTriangle`] as the cell mask of one split matrix.
#[derive(Debug, Clone, Copy)]
pub struct SplitMask<'a> {
    triangle: &'a OverrideTriangle,
    r: usize,
}

impl<'a> SplitMask<'a> {
    /// Mask for split `r` (`1 ≤ r ≤ m−1`).
    pub fn new(triangle: &'a OverrideTriangle, r: usize) -> Self {
        debug_assert!(r >= 1 && r < triangle.seq_len().max(1));
        SplitMask { triangle, r }
    }

    /// The split this mask serves.
    pub fn split(&self) -> usize {
        self.r
    }
}

impl CellMask for SplitMask<'_> {
    #[inline(always)]
    fn is_overridden(&self, row: usize, col: usize) -> bool {
        self.triangle.get(row, self.r + col)
    }

    #[inline(always)]
    fn is_empty_hint(&self) -> bool {
        self.triangle.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_matrix_cells_to_sequence_pairs() {
        let mut t = OverrideTriangle::new(10);
        t.set(2, 7); // prefix position 2 vs suffix position 7
                     // For split r = 5: cell (2, 2) aligns positions (2, 5 + 2 = 7).
        let mask = SplitMask::new(&t, 5);
        assert!(mask.is_overridden(2, 2));
        assert!(!mask.is_overridden(2, 1));
        assert!(!mask.is_overridden(1, 2));
        // For split r = 4: the same pair sits at cell (2, 3).
        let mask4 = SplitMask::new(&t, 4);
        assert!(mask4.is_overridden(2, 3));
    }

    #[test]
    fn empty_hint_tracks_triangle() {
        let mut t = OverrideTriangle::new(4);
        assert!(SplitMask::new(&t, 1).is_empty_hint());
        t.set(0, 2);
        assert!(!SplitMask::new(&t, 1).is_empty_hint());
    }
}
