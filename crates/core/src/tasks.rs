//! The best-first task queue of Figure 5.
//!
//! One task per split `r`. A task's `score` is an **upper bound** on the
//! score it can achieve under the current override triangle: either the
//! real score from its most recent (re)alignment — whose triangle can
//! only have grown since — or [`SCORE_INFINITY`] if never aligned.
//! `aligned_with` records how many top alignments existed when the task
//! was last aligned; a task is *fresh* iff that count equals the current
//! one, and a fresh task at the head of the queue is by construction the
//! next top alignment.
//!
//! ## The bound lattice
//!
//! A task's score only ever moves **down** a three-step lattice, and
//! every step preserves the queue invariant "score ≥ anything this
//! split can still achieve":
//!
//! 1. `SCORE_INFINITY` — the paper's initial bound: trivially
//!    admissible, totally uninformative.
//! 2. **seed bound** `B(r)` — from [`crate::seed::SplitBounds`]
//!    ([`Task::initial_bounded`] /
//!    [`TaskQueue::for_sequence_len_bounded`]): admissible by the
//!    triangular-sweep dominance argument, finite, and recomputed
//!    (only ever tightening) as the override triangle grows. A task
//!    can re-enter the queue with a tighter seed bound without being
//!    aligned — that is the "pruned pop" fast path.
//! 3. **exact score** — after a (re)alignment; still an upper bound
//!    later because masking is monotone.
//!
//! Because stale scores at any lattice level are upper bounds, a fresh
//! task at the head still beats every possible competitor — pruning
//! changes *which* sweeps happen, never *what* is accepted.
//!
//! ## Tie-breaking
//!
//! Ties break on the **smaller split** (the `Ord` impl below). With finite
//! seed bounds, ties become common (e.g. many seedless splits sharing a
//! low bound), and the sequential finder, SIMD group sweep, SMP
//! workers, and the cluster master must all pop the same task next or
//! their accepted-alignment streams diverge. The deterministic order
//! `(score desc, r asc)` is what lets `engines_agree` demand
//! bit-identical output across all engines with pruning on or off.

use repro_align::Score;
use std::collections::BinaryHeap;

/// Initial score of a never-aligned task (the paper's "infinity").
pub const SCORE_INFINITY: Score = Score::MAX;

/// `aligned_with` value of a never-aligned task (the paper's −1).
pub const NEVER_ALIGNED: usize = usize::MAX;

/// One entry of the task queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// The split this task aligns (`1 ≤ r ≤ m−1`).
    pub r: usize,
    /// Upper bound (stale) or exact (fresh) alignment score.
    pub score: Score,
    /// Number of top alignments that existed at the last (re)alignment;
    /// [`NEVER_ALIGNED`] initially.
    pub aligned_with: usize,
}

impl Task {
    /// A brand-new task for split `r`.
    pub fn initial(r: usize) -> Self {
        Task {
            r,
            score: SCORE_INFINITY,
            aligned_with: NEVER_ALIGNED,
        }
    }

    /// A brand-new task for split `r` carrying a finite admissible
    /// bound instead of [`SCORE_INFINITY`] (lattice step 1 → 2; the
    /// bound must dominate the split's true masked score, as
    /// [`crate::seed::SplitBounds`] guarantees).
    pub fn initial_bounded(r: usize, bound: Score) -> Self {
        Task {
            r,
            score: bound,
            aligned_with: NEVER_ALIGNED,
        }
    }

    /// Is this task's score exact under `tops_found` top alignments?
    #[inline]
    pub fn is_fresh(&self, tops_found: usize) -> bool {
        self.aligned_with == tops_found
    }
}

impl Ord for Task {
    /// Highest score first; ties break on the smaller split so every
    /// engine (sequential, SIMD, threads, cluster) pops identically.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| other.r.cmp(&self.r))
    }
}

impl PartialOrd for Task {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Max-heap of tasks keyed by score (deterministic tie-break on split).
#[derive(Debug, Clone, Default)]
pub struct TaskQueue {
    heap: BinaryHeap<Task>,
}

impl TaskQueue {
    /// Queue initialised with one [`Task::initial`] per split of a
    /// length-`m` sequence (Figure 5, lines 2–7).
    pub fn for_sequence_len(m: usize) -> Self {
        let mut heap = BinaryHeap::with_capacity(m.saturating_sub(1));
        for r in 1..m {
            heap.push(Task::initial(r));
        }
        TaskQueue { heap }
    }

    /// Queue initialised with one [`Task::initial_bounded`] per split,
    /// taking each split's bound from `bounds[r]` (indexed by `r`,
    /// entry 0 unused — the layout of
    /// [`crate::seed::SplitBounds::bounds`]). Splits beyond
    /// `bounds.len()` fall back to [`SCORE_INFINITY`].
    pub fn for_sequence_len_bounded(m: usize, bounds: &[Score]) -> Self {
        let mut heap = BinaryHeap::with_capacity(m.saturating_sub(1));
        for r in 1..m {
            match bounds.get(r) {
                Some(&b) => heap.push(Task::initial_bounded(r, b)),
                None => heap.push(Task::initial(r)),
            }
        }
        TaskQueue { heap }
    }

    /// An empty queue.
    pub fn new() -> Self {
        TaskQueue::default()
    }

    /// Insert (or re-insert) a task.
    pub fn push(&mut self, task: Task) {
        self.heap.push(task);
    }

    /// Remove and return the highest-score task.
    pub fn pop(&mut self) -> Option<Task> {
        self.heap.pop()
    }

    /// Peek at the highest-score task.
    pub fn peek(&self) -> Option<&Task> {
        self.heap.peek()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_tasks_are_infinite_and_stale() {
        let t = Task::initial(3);
        assert_eq!(t.score, SCORE_INFINITY);
        assert!(!t.is_fresh(0));
        assert_eq!(t.aligned_with, NEVER_ALIGNED);
    }

    #[test]
    fn queue_orders_by_score_descending() {
        let mut q = TaskQueue::new();
        for (r, score) in [(1, 10), (2, 30), (3, 20)] {
            q.push(Task {
                r,
                score,
                aligned_with: 0,
            });
        }
        assert_eq!(q.pop().unwrap().r, 2);
        assert_eq!(q.pop().unwrap().r, 3);
        assert_eq!(q.pop().unwrap().r, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_on_smaller_split() {
        let mut q = TaskQueue::new();
        for r in [5, 2, 9] {
            q.push(Task {
                r,
                score: 7,
                aligned_with: 0,
            });
        }
        assert_eq!(q.pop().unwrap().r, 2);
        assert_eq!(q.pop().unwrap().r, 5);
        assert_eq!(q.pop().unwrap().r, 9);
    }

    #[test]
    fn for_sequence_len_seeds_all_splits() {
        let mut q = TaskQueue::for_sequence_len(6);
        assert_eq!(q.len(), 5);
        let mut splits: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|t| t.r).collect();
        splits.sort();
        assert_eq!(splits, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn bounded_queue_orders_by_bound_then_split() {
        // bounds indexed by r; entry 0 unused.
        let bounds = [0, 5, 9, 5, 2];
        let mut q = TaskQueue::for_sequence_len_bounded(5, &bounds);
        assert_eq!(q.len(), 4);
        let popped: Vec<(usize, Score)> =
            std::iter::from_fn(|| q.pop()).map(|t| (t.r, t.score)).collect();
        assert_eq!(popped, vec![(2, 9), (1, 5), (3, 5), (4, 2)]);
        // All bounded tasks start never-aligned.
        let q = TaskQueue::for_sequence_len_bounded(3, &[0, 7, 7]);
        assert!(q.peek().unwrap().aligned_with == NEVER_ALIGNED);
        // Short bound tables fall back to infinity.
        let mut q = TaskQueue::for_sequence_len_bounded(4, &[0, 1]);
        assert_eq!(q.pop().unwrap().score, SCORE_INFINITY);
    }

    #[test]
    fn infinity_outranks_any_real_score() {
        let mut q = TaskQueue::new();
        q.push(Task {
            r: 1,
            score: Score::MAX - 1,
            aligned_with: 0,
        });
        q.push(Task::initial(2));
        assert_eq!(q.pop().unwrap().r, 2);
    }

    #[test]
    fn freshness() {
        let t = Task {
            r: 1,
            score: 5,
            aligned_with: 3,
        };
        assert!(t.is_fresh(3));
        assert!(!t.is_fresh(4));
    }

    #[test]
    fn empty_sequence_yields_empty_queue() {
        assert!(TaskQueue::for_sequence_len(0).is_empty());
        assert!(TaskQueue::for_sequence_len(1).is_empty());
        assert_eq!(TaskQueue::for_sequence_len(2).len(), 1);
    }
}
