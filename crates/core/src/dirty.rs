//! Per-accept **dirty bounds** for incremental realignment.
//!
//! When top alignment number `k` commits, every matched pair `(p, q)` it
//! sets in the override triangle masks exactly one cell per split it
//! *straddles*: in split `r`'s matrix the pair occupies cell
//! `(row = p, col = q − r)`, which exists iff `p < r ≤ q`. A pair that
//! does not straddle `r` cannot touch `r`'s matrix at all — so between
//! two sweeps of the same split, every DP row above the smallest
//! straddling `p` is bit-identical to the previous sweep.
//!
//! [`DirtyLog`] records the accepted pair lists in commit order and
//! answers, for any split and any past version, where the dirty region
//! starts. Because traceback emits pairs in path order, each accept's
//! list is strictly ascending in *both* coordinates, which makes every
//! query a binary search: the first pair with `q ≥ r` is simultaneously
//! the straddling pair with the smallest `p` (row bound) and the
//! smallest `q` (column bound) — later pairs only have larger `p`.

use crate::finder::TopAlignment;

/// Append-only log of accepted alignments' pair lists, answering
/// "which rows/columns of split `r` changed since version `v`?".
///
/// The *version* is simply the number of accepts recorded; engines that
/// replicate the log (SMP workers from the shared top list, cluster
/// workers from `ACCEPTED` broadcasts) keep it in lock-step with their
/// override-triangle replica, so a version stamp identifies a triangle
/// state exactly.
#[derive(Debug, Clone, Default)]
pub struct DirtyLog {
    accepts: Vec<Vec<(usize, usize)>>,
}

impl DirtyLog {
    /// An empty log (version 0 — the empty triangle).
    pub fn new() -> Self {
        DirtyLog::default()
    }

    /// Number of accepts recorded; stamps returned to callers.
    pub fn version(&self) -> u64 {
        self.accepts.len() as u64
    }

    /// Record one accepted alignment's matched pairs (path order, so
    /// strictly ascending in both coordinates).
    pub fn record_accept(&mut self, pairs: &[(usize, usize)]) {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1),
            "accepted pairs must ascend in both coordinates"
        );
        self.accepts.push(pairs.to_vec());
    }

    /// Catch this replica up to a shared top-alignment list (the SMP
    /// engines' accept source): appends the pairs of every top beyond
    /// the current version.
    pub fn sync_from(&mut self, tops: &[TopAlignment]) {
        for top in &tops[self.accepts.len().min(tops.len())..] {
            self.accepts.push(top.pairs.clone());
        }
    }

    /// The dirty bounds of split `r` relative to version `since`:
    /// `Some((first_dirty_row, first_dirty_col))` if any pair accepted
    /// after `since` straddles `r`, else `None` — meaning `r`'s matrix
    /// (and therefore its realignment result) is unchanged since then.
    ///
    /// Rows `0..first_dirty_row` of the split matrix are bit-identical
    /// to any sweep at or after `since`, so checkpointed state at or
    /// below that boundary is still exact.
    pub fn dirty_bounds(&self, r: usize, since: u64) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize)> = None;
        for pairs in &self.accepts[(since as usize).min(self.accepts.len())..] {
            // First pair with q ≥ r; ascending p means it carries the
            // minimal p among all pairs with q ≥ r. If even that p is
            // ≥ r, no pair of this accept straddles r.
            let i = pairs.partition_point(|&(_, q)| q < r);
            if let Some(&(p, q)) = pairs.get(i) {
                if p < r {
                    let bound = (p, q - r);
                    best = Some(match best {
                        Some((bp, bq)) => (bp.min(bound.0), bq.min(bound.1)),
                        None => bound,
                    });
                }
            }
        }
        best
    }

    /// The first dirty prefix row of split `r` since version `since`
    /// (see [`Self::dirty_bounds`]).
    pub fn dirty_row(&self, r: usize, since: u64) -> Option<usize> {
        self.dirty_bounds(r, since).map(|(row, _)| row)
    }

    /// `true` iff any split in `r_lo..=r_hi` has been dirtied since
    /// `since` — the whole-group test for the SIMD lane sweeps. A pair
    /// `(p, q)` straddles some `r` in the range iff `[p+1, q]`
    /// intersects `[r_lo, r_hi]`.
    pub fn dirty_in_range(&self, r_lo: usize, r_hi: usize, since: u64) -> bool {
        if r_lo > r_hi {
            return false;
        }
        self.accepts[(since as usize).min(self.accepts.len())..]
            .iter()
            .any(|pairs| {
                // Minimal p among pairs with q ≥ r_lo; the pair straddles
                // some r ∈ [r_lo, r_hi] iff p + 1 ≤ r_hi, i.e. p < r_hi.
                let i = pairs.partition_point(|&(_, q)| q < r_lo);
                pairs.get(i).is_some_and(|&(p, _)| p < r_hi)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_is_clean_everywhere() {
        let log = DirtyLog::new();
        assert_eq!(log.version(), 0);
        assert_eq!(log.dirty_bounds(5, 0), None);
        assert!(!log.dirty_in_range(1, 100, 0));
    }

    #[test]
    fn straddling_pairs_set_the_bounds() {
        let mut log = DirtyLog::new();
        // An accept matching prefix positions 2..=4 to suffix 7..=9.
        log.record_accept(&[(2, 7), (3, 8), (4, 9)]);
        assert_eq!(log.version(), 1);
        // Split 5: all three pairs straddle (p < 5 ≤ q); the first pair
        // has the minimal p = 2 and minimal q = 7 → col 7 − 5 = 2.
        assert_eq!(log.dirty_bounds(5, 0), Some((2, 2)));
        // Split 8: only pairs with q ≥ 8 qualify → (3, 8): row 3, col 0.
        assert_eq!(log.dirty_bounds(8, 0), Some((3, 0)));
        // Split 2: no pair has p < 2.
        assert_eq!(log.dirty_bounds(2, 0), None);
        // Split 10: no pair has q ≥ 10.
        assert_eq!(log.dirty_bounds(10, 0), None);
        // Since version 1 (after the accept) everything is clean again.
        assert_eq!(log.dirty_bounds(5, 1), None);
    }

    #[test]
    fn bounds_minimise_over_multiple_accepts() {
        let mut log = DirtyLog::new();
        log.record_accept(&[(10, 20)]);
        log.record_accept(&[(3, 30)]);
        // Split 15: accept 0 gives (10, 5); accept 1 gives (3, 15).
        assert_eq!(log.dirty_bounds(15, 0), Some((3, 5)));
        // Relative to version 1 only accept 1 counts.
        assert_eq!(log.dirty_bounds(15, 1), Some((3, 15)));
    }

    #[test]
    fn range_query_matches_per_split_scan() {
        let mut log = DirtyLog::new();
        log.record_accept(&[(2, 7), (3, 8), (4, 9)]);
        log.record_accept(&[(12, 15)]);
        for lo in 1..20 {
            for hi in lo..20 {
                let scan = (lo..=hi).any(|r| log.dirty_row(r, 0).is_some());
                assert_eq!(
                    log.dirty_in_range(lo, hi, 0),
                    scan,
                    "range {lo}..={hi} disagrees with the per-split scan"
                );
            }
        }
        // And with a nonzero base version.
        for lo in 1..20 {
            for hi in lo..20 {
                let scan = (lo..=hi).any(|r| log.dirty_row(r, 1).is_some());
                assert_eq!(log.dirty_in_range(lo, hi, 1), scan);
            }
        }
    }

    #[test]
    fn sync_from_appends_only_new_tops() {
        let top = |index: usize, pairs: Vec<(usize, usize)>| TopAlignment {
            index,
            r: 4,
            score: 8,
            pairs,
        };
        let tops = vec![top(0, vec![(0, 5)]), top(1, vec![(1, 6)])];
        let mut log = DirtyLog::new();
        log.sync_from(&tops[..1]);
        assert_eq!(log.version(), 1);
        log.sync_from(&tops);
        assert_eq!(log.version(), 2);
        // Re-syncing is idempotent.
        log.sync_from(&tops);
        assert_eq!(log.version(), 2);
        assert_eq!(log.dirty_row(5, 0), Some(0));
        assert_eq!(log.dirty_row(5, 1), Some(1));
        assert_eq!(log.dirty_row(5, 2), None);
    }
}
