//! The override triangle (paper §3).
//!
//! A triangular boolean matrix over unordered residue-position pairs
//! `(p, q)` with `p < q < m`: bit set ⇔ the pair is matched by an
//! already-accepted top alignment, so realignments must force the
//! corresponding matrix cell to zero.
//!
//! Two representations, selected at construction:
//!
//! * **dense** — `m(m−1)/2` packed bits (72 MiB for the full
//!   34 350-residue titin; cheap to replicate, `O(1)` probes; the
//!   paper's default);
//! * **sparse** — a hash set of pairs, for the paper's remark that
//!   "since the triangle is sparse, it can be compressed if memory
//!   usage is an issue": only some tens of alignment paths are ever
//!   marked, a few thousand pairs regardless of `m`.
//!
//! Both behave identically; `repro-core`'s tests drive them
//! differentially and the finder accepts either.

use std::collections::HashSet;
use std::fmt;

#[derive(Clone)]
enum Repr {
    Dense(Vec<u64>),
    Sparse(HashSet<u64>),
}

/// Triangular boolean set over position pairs `(p, q)`, `p < q`.
#[derive(Clone)]
pub struct OverrideTriangle {
    m: usize,
    repr: Repr,
    set_count: usize,
}

impl OverrideTriangle {
    /// An empty dense triangle for a sequence of length `m`.
    pub fn new(m: usize) -> Self {
        let nbits = m * m.saturating_sub(1) / 2;
        OverrideTriangle {
            m,
            repr: Repr::Dense(vec![0; nbits.div_ceil(64)]),
            set_count: 0,
        }
    }

    /// An empty sparse (compressed) triangle for a sequence of length
    /// `m`: memory proportional to the pairs actually overridden.
    pub fn new_sparse(m: usize) -> Self {
        OverrideTriangle {
            m,
            repr: Repr::Sparse(HashSet::new()),
            set_count: 0,
        }
    }

    /// `true` iff this triangle uses the compressed representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Approximate heap footprint in bytes (the quantity the dense vs
    /// sparse trade-off is about).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Dense(bits) => bits.len() * 8,
            // HashSet of u64: entry + control byte, roughly.
            Repr::Sparse(set) => set.capacity() * 9,
        }
    }

    /// Sequence length this triangle covers.
    #[inline]
    pub fn seq_len(&self) -> usize {
        self.m
    }

    /// Number of overridden pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.set_count
    }

    /// `true` iff no pair is overridden.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.set_count == 0
    }

    #[inline(always)]
    fn index(&self, p: usize, q: usize) -> usize {
        debug_assert!(p < q && q < self.m, "pair ({p},{q}) out of triangle");
        q * (q - 1) / 2 + p
    }

    /// Is pair `(p, q)` overridden? Requires `p < q < m`.
    #[inline(always)]
    pub fn get(&self, p: usize, q: usize) -> bool {
        let i = self.index(p, q);
        match &self.repr {
            Repr::Dense(bits) => (bits[i / 64] >> (i % 64)) & 1 != 0,
            Repr::Sparse(set) => set.contains(&(i as u64)),
        }
    }

    /// Override pair `(p, q)`. Returns `true` if the pair was newly set.
    pub fn set(&mut self, p: usize, q: usize) -> bool {
        let i = self.index(p, q);
        let newly = match &mut self.repr {
            Repr::Dense(bits) => {
                let word = &mut bits[i / 64];
                let mask = 1u64 << (i % 64);
                if *word & mask == 0 {
                    *word |= mask;
                    true
                } else {
                    false
                }
            }
            Repr::Sparse(set) => set.insert(i as u64),
        };
        if newly {
            self.set_count += 1;
        }
        newly
    }

    /// Iterate over all overridden pairs (ascending `q`, then `p`).
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let m = self.m;
        (1..m).flat_map(move |q| (0..q).filter(move |&p| self.get(p, q)).map(move |p| (p, q)))
    }
}

impl PartialEq for OverrideTriangle {
    /// Logical equality: same length and same overridden pairs,
    /// regardless of representation.
    fn eq(&self, other: &Self) -> bool {
        self.m == other.m && self.set_count == other.set_count && self.iter().eq(other.iter())
    }
}

impl Eq for OverrideTriangle {}

impl fmt::Debug for OverrideTriangle {
    /// Compact Debug: size and population, not megabytes of bits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OverrideTriangle(m={}, {} pairs set, {})",
            self.m,
            self.set_count,
            if self.is_sparse() { "sparse" } else { "dense" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(m: usize) -> [OverrideTriangle; 2] {
        [OverrideTriangle::new(m), OverrideTriangle::new_sparse(m)]
    }

    #[test]
    fn starts_empty() {
        for t in both(100) {
            assert!(t.is_empty());
            assert_eq!(t.len(), 0);
            for q in 1..100 {
                for p in 0..q {
                    assert!(!t.get(p, q));
                }
            }
        }
    }

    #[test]
    fn set_get_roundtrip() {
        for mut t in both(50) {
            assert!(t.set(3, 17));
            assert!(t.get(3, 17));
            assert!(!t.get(3, 18));
            assert!(!t.get(2, 17));
            assert_eq!(t.len(), 1);
        }
    }

    #[test]
    fn double_set_is_idempotent() {
        for mut t in both(10) {
            assert!(t.set(0, 1));
            assert!(!t.set(0, 1));
            assert_eq!(t.len(), 1);
        }
    }

    #[test]
    fn all_pairs_are_distinct_bits() {
        for mut t in both(40) {
            let mut n = 0;
            for q in 1..40 {
                for p in 0..q {
                    assert!(t.set(p, q), "bit ({p},{q}) collided");
                    n += 1;
                }
            }
            assert_eq!(t.len(), n);
            assert_eq!(n, 40 * 39 / 2);
        }
    }

    #[test]
    fn iter_yields_exactly_the_set_pairs() {
        for mut t in both(20) {
            let pairs = [(0, 5), (3, 4), (10, 19), (0, 1)];
            for &(p, q) in &pairs {
                t.set(p, q);
            }
            let mut got: Vec<_> = t.iter().collect();
            got.sort();
            let mut want = pairs.to_vec();
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn dense_and_sparse_agree_logically() {
        let [mut d, mut s] = both(64);
        let pairs = [(0, 1), (5, 40), (39, 40), (62, 63), (0, 63)];
        for &(p, q) in &pairs {
            d.set(p, q);
            s.set(p, q);
        }
        assert_eq!(d, s, "representations must compare equal");
        assert!(s.is_sparse() && !d.is_sparse());
    }

    #[test]
    fn sparse_is_smaller_when_sparse() {
        let m = 4000;
        let mut d = OverrideTriangle::new(m);
        let mut s = OverrideTriangle::new_sparse(m);
        for i in 0..100 {
            d.set(i, i + 2000);
            s.set(i, i + 2000);
        }
        assert!(
            s.heap_bytes() < d.heap_bytes() / 10,
            "sparse {} vs dense {} bytes",
            s.heap_bytes(),
            d.heap_bytes()
        );
    }

    #[test]
    fn tiny_sizes() {
        for t in both(0) {
            assert!(t.is_empty());
        }
        for mut t in both(2) {
            assert!(t.set(0, 1));
            assert_eq!(t.iter().count(), 1);
        }
    }

    #[test]
    fn debug_is_compact() {
        let t = OverrideTriangle::new(1000);
        assert_eq!(
            format!("{t:?}"),
            "OverrideTriangle(m=1000, 0 pairs set, dense)"
        );
    }

    #[test]
    #[should_panic(expected = "out of triangle")]
    #[cfg(debug_assertions)]
    fn out_of_range_panics() {
        OverrideTriangle::new(5).get(2, 5);
    }
}
