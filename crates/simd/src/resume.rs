//! Per-lane incremental resume for group sweeps.
//!
//! The incremental layer used to be group-granular: a stale group was
//! either replayed whole (every lane clean since its last sweep) or
//! re-swept whole. Measured on embedded-repeat workloads that memo hit
//! rate is ~2 %, and a miss sweeps every lane's full matrix — a median
//! of ~10 k rows per realignment versus ~350 for the sequential engine.
//!
//! This module fixes the granularity mismatch. On a stale pop each lane
//! is classified independently against the [`DirtyLog`]:
//!
//! * **clean** — no accept dirtied the lane's split since its memo
//!   stamp: replay the memoised exact score, sweep nothing;
//! * **resumable / from-scratch** — re-pack the remaining lanes into a
//!   *compacted* group (the kernel is generic over arbitrary ascending
//!   split sets) and sweep only them, resuming from the deepest
//!   checkpoint row that is valid **and present for every packed
//!   lane** — all lanes of one interleaved sweep must start at the same
//!   row, so the shared resume row is the max over the intersection of
//!   the lanes' valid checkpoint rows (group sweeps capture all lanes
//!   at the same rows, so the sets align naturally).
//!
//! Checkpoints are the scalar [`Checkpoint`] verbatim — per-lane `m` /
//! `maxy` over the lane's own columns. Columns left of a lane's split
//! are reconstructed analytically (`m = 0`, `maxy = −open − ext`; see
//! [`crate::group`]), so nothing interleaved is ever stored, and a
//! checkpoint captured by a narrow sweep, a wide sweep or the scalar
//! kernel restores into any of them bit-identically.

use crate::group::{GroupCapture, GroupResume, LaneResume};
use repro_align::{Checkpoint, CheckpointStore, Score};
use repro_core::DirtyLog;
use std::collections::BTreeSet;

/// Checkpoints kept per split: a quarter-grid per sweep plus dirty
/// frontiers accumulates fast across realignments; the shallowest are
/// dropped first (deep checkpoints skip more rows).
pub const SIMD_MAX_CKPTS: usize = 8;

/// Minimum rows a checkpoint must promise to skip (relative to the
/// sweep's own resume row) before it is captured. Capture cost is
/// O(active columns) per lane *regardless of depth* — for a shallow
/// group the three quarter-grid copies rival the whole sweep's DP, and
/// the SIMD kernels are fast enough that the bookkeeping was measured
/// eating the entire incremental win. A checkpoint `stride` rows below
/// the resume row saves at most `stride` rows on the next resume, so
/// rows closer than this are not worth storing.
pub const MIN_CAPTURE_STRIDE: usize = 64;

/// One lane's sweep memo: the dirty-log version of its last sweep plus
/// the exact `(score, shadow_rejections)` to replay on a skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneMemo {
    /// Dirty-log version at the lane's last (re)alignment.
    pub stamp: u64,
    /// Exact post-shadow score at that version.
    pub score: Score,
    /// Shadow rejections counted when that score was computed.
    pub shadows: u64,
}

/// Shared per-run incremental state for the group engines: the
/// budget-capped checkpoint store. A budget of 0 keeps the type usable
/// but disables every shortcut (accounting-only mode, the documented
/// always-exact fallback).
#[derive(Debug)]
pub struct GroupIncremental {
    store: CheckpointStore,
    enabled: bool,
}

impl GroupIncremental {
    /// A store with the given global byte budget (0 disables shortcuts).
    pub fn new(budget: usize) -> Self {
        GroupIncremental {
            store: CheckpointStore::new(budget),
            enabled: budget > 0,
        }
    }

    /// Whether skips/resumes/captures are enabled (budget > 0).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whole-split evictions performed by the underlying store.
    pub fn evictions(&self) -> u64 {
        self.store.evictions()
    }

    /// Classify a stale group's lanes and pull the packed lanes'
    /// checkpoints out of the store. `stamps[l]` is lane `l`'s memo
    /// stamp (its last sweep's dirty-log version).
    pub fn plan(
        &mut self,
        dirty: &DirtyLog,
        r0: usize,
        nl: usize,
        stamps: &[u64],
    ) -> RealignPlan {
        debug_assert_eq!(stamps.len(), nl);
        let mut clean = Vec::new();
        let mut packed = Vec::new();
        let mut rs = Vec::new();
        for (l, &stamp) in stamps.iter().enumerate() {
            let r = r0 + l;
            if self.enabled && dirty.dirty_row(r, stamp).is_none() {
                clean.push(l);
            } else {
                packed.push(l);
                rs.push(r);
            }
        }
        // Valid checkpoints per packed lane (rows 0..row untouched since
        // capture). Invalid ones are dropped here; valid ones are handed
        // back to the store by `commit`.
        let valid: Vec<Vec<Checkpoint>> = rs
            .iter()
            .map(|&r| {
                self.store
                    .take_split(r)
                    .into_iter()
                    .filter(|c| dirty.dirty_row(r, c.stamp).is_none_or(|d| d >= c.row))
                    .collect()
            })
            .collect();
        // Deepest row present in *every* packed lane's valid set: the
        // shared resume row (0 = from scratch).
        let mut resume_row = 0;
        if self.enabled && !valid.is_empty() && valid.iter().all(|v| !v.is_empty()) {
            let mut rows: Vec<usize> = valid[0].iter().map(|c| c.row).collect();
            rows.sort_unstable_by(|a, b| b.cmp(a));
            for row in rows {
                if valid.iter().all(|v| v.iter().any(|c| c.row == row)) {
                    resume_row = row;
                    break;
                }
            }
        }
        // Realignment sweeps capture at the dirty frontiers only
        // (grid 1): accepts cluster, so the frontier row is where the
        // next resume wants to start, while evenly-spaced rows were
        // measured costing more in transpose work across ~2k realigns
        // than their occasional deeper resume ever repaid.
        let capture_rows = if self.enabled && !rs.is_empty() {
            plan_captures(dirty, &rs, resume_row, 1)
        } else {
            Vec::new()
        };
        RealignPlan {
            clean,
            packed,
            rs,
            resume_row,
            kept: valid,
            capture_rows,
        }
    }

    /// Capture rows for a first-pass sweep of the consecutive group
    /// `r0..r0+nl` (resume row 0, no prior checkpoints). The first pass
    /// has no dirty frontier to aim at, so it hedges with a single
    /// mid-depth capture — each extra first-pass row costs a transpose
    /// of the whole group but only the one just below the (future)
    /// frontier ever gets used; realignment sweeps re-checkpoint at the
    /// actual frontier with the full grid.
    pub fn first_pass_captures(&self, dirty: &DirtyLog, r0: usize, nl: usize) -> Vec<usize> {
        if !self.enabled || nl == 0 {
            return Vec::new();
        }
        let rs: Vec<usize> = (0..nl).map(|l| r0 + l).collect();
        plan_captures(dirty, &rs, 0, 2)
    }

    /// Merge fresh captures with the plan's kept checkpoints and hand
    /// everything back to the store. `rs[i]`/`kept[i]` pair with the
    /// capture entries at lane position `i`; `stamp` is the sweep's
    /// dirty-log version and `priority[i]` the lane's post-sweep score
    /// (the store's eviction key).
    pub fn commit(
        &mut self,
        rs: &[usize],
        kept: Vec<Vec<Checkpoint>>,
        mut captures: Vec<GroupCapture>,
        stamp: u64,
        priority: &[Score],
    ) {
        if !self.enabled {
            return;
        }
        debug_assert_eq!(rs.len(), priority.len());
        let mut kept = kept;
        kept.resize_with(rs.len(), Vec::new);
        for (i, (&r, old)) in rs.iter().zip(kept).enumerate() {
            // Each lane's capture buffers are moved into the store, not
            // cloned — the sweep already allocated them once.
            let mut merged: Vec<Checkpoint> = captures
                .iter_mut()
                .filter_map(|cap| {
                    cap.lanes[i].take().map(|(m, maxy)| Checkpoint {
                        row: cap.row,
                        stamp,
                        m,
                        maxy,
                    })
                })
                .collect();
            // Fresh captures win row collisions (newer stamps stay valid
            // longer); old checkpoints at other rows are kept.
            for c in old {
                if !merged.iter().any(|f| f.row == c.row) {
                    merged.push(c);
                }
            }
            merged.sort_by_key(|c| c.row);
            while merged.len() > SIMD_MAX_CKPTS {
                merged.remove(0); // shallowest first
            }
            self.store.put_split(r, priority[i], merged);
        }
    }
}

/// One stale group's per-lane realignment plan.
#[derive(Debug)]
pub struct RealignPlan {
    /// Lane indices replayable from their memo (no dirty row).
    pub clean: Vec<usize>,
    /// Lane indices to sweep, ascending.
    pub packed: Vec<usize>,
    /// The packed lanes' splits (parallel to `packed`).
    pub rs: Vec<usize>,
    /// Shared resume row for the packed sweep (0 = from scratch).
    pub resume_row: usize,
    /// Still-valid checkpoints per packed lane (the resume states borrow
    /// from these; `commit` hands them back to the store).
    pub kept: Vec<Vec<Checkpoint>>,
    /// Inter-row capture positions for the packed sweep.
    pub capture_rows: Vec<usize>,
}

impl RealignPlan {
    /// The resume input for the packed sweep, borrowing the kept
    /// checkpoints at [`RealignPlan::resume_row`]; `None` when sweeping
    /// from scratch.
    pub fn resume(&self) -> Option<GroupResume<'_>> {
        if self.resume_row == 0 {
            return None;
        }
        let lanes: Vec<LaneResume<'_>> = self
            .kept
            .iter()
            .map(|set| {
                let c = set
                    .iter()
                    .find(|c| c.row == self.resume_row)
                    .expect("resume row is present in every packed lane");
                LaneResume {
                    m: &c.m,
                    maxy: &c.maxy,
                }
            })
            .collect();
        Some(GroupResume {
            row: self.resume_row,
            lanes,
        })
    }

    /// Whether every lane was clean — the whole-group skip.
    pub fn full_skip(&self) -> bool {
        self.packed.is_empty()
    }
}

/// Capture positions for a sweep of `rs` resuming at `resume_row`: an
/// even `grid`-point subdivision of the swept rows plus each lane's
/// first-ever dirty row (accepts cluster, so the next realignment's
/// frontier tends to repeat — checkpointing right at it makes that
/// resume free). Rows less than [`MIN_CAPTURE_STRIDE`] below the
/// resume row are dropped: they cost a full capture but can never
/// repay it.
fn plan_captures(dirty: &DirtyLog, rs: &[usize], resume_row: usize, grid: usize) -> Vec<usize> {
    let rmax = *rs.last().expect("non-empty packed set");
    let span = rmax - resume_row;
    let mut rows = BTreeSet::new();
    if span / grid >= MIN_CAPTURE_STRIDE {
        for k in 1..grid {
            rows.insert(resume_row + k * span / grid);
        }
    }
    for &r in rs {
        if let Some(f) = dirty.dirty_row(r, 0) {
            if f >= resume_row + MIN_CAPTURE_STRIDE {
                rows.insert(f);
            }
        }
    }
    rows.into_iter()
        .filter(|&c| c > resume_row && c < rmax)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt(row: usize, stamp: u64) -> Checkpoint {
        Checkpoint {
            row,
            stamp,
            m: vec![0; 4],
            maxy: vec![-3; 4],
        }
    }

    #[test]
    fn budget_zero_plans_full_sweeps() {
        let mut incr = GroupIncremental::new(0);
        let dirty = DirtyLog::new();
        let plan = incr.plan(&dirty, 3, 4, &[0; 4]);
        assert!(plan.clean.is_empty());
        assert_eq!(plan.packed, vec![0, 1, 2, 3]);
        assert_eq!(plan.rs, vec![3, 4, 5, 6]);
        assert_eq!(plan.resume_row, 0);
        assert!(plan.capture_rows.is_empty());
        assert!(plan.resume().is_none());
    }

    #[test]
    fn clean_lanes_are_partitioned_out() {
        let mut incr = GroupIncremental::new(1 << 20);
        let mut dirty = DirtyLog::new();
        // Accept touching prefix rows 2..=4: splits > 2 are dirtied at
        // rows ≥ 2... splits ≤ 2 see nothing.
        dirty.record_accept(&[(2, 10), (3, 11), (4, 12)]);
        let plan = incr.plan(&dirty, 1, 4, &[0; 4]);
        // Splits 1 and 2: prefix rows 0..r contain no dirty row ⇒ clean.
        assert_eq!(plan.clean, vec![0, 1]);
        assert_eq!(plan.rs, vec![3, 4]);
    }

    #[test]
    fn shared_resume_row_is_max_of_intersection() {
        let mut incr = GroupIncremental::new(1 << 20);
        let mut dirty = DirtyLog::new();
        // The accept dirties both splits (row 1), staling the stamp-0
        // lane memos; the checkpoints are stamped *after* it (version 1)
        // so they stay valid.
        dirty.record_accept(&[(1, 30), (2, 31)]);
        incr.store
            .put_split(5, 10, vec![ckpt(2, 1), ckpt(4, 1)]);
        incr.store.put_split(6, 10, vec![ckpt(2, 1), ckpt(3, 1)]);
        let plan = incr.plan(&dirty, 5, 2, &[0, 0]);
        assert_eq!(plan.packed, vec![0, 1]);
        // Rows {2,4} ∩ {2,3} = {2}.
        assert_eq!(plan.resume_row, 2);
        assert!(plan.resume().is_some());
    }

    #[test]
    fn invalid_checkpoints_are_dropped() {
        let mut incr = GroupIncremental::new(1 << 20);
        let mut dirty = DirtyLog::new();
        incr.store.put_split(5, 10, vec![ckpt(4, 0)]);
        // Accept at prefix row 1 dirties rows ≥ 1 of split 5: the stamp-0
        // checkpoint at row 4 covers rows 0..4 ⊇ row 1 ⇒ invalid.
        dirty.record_accept(&[(1, 30)]);
        let plan = incr.plan(&dirty, 5, 1, &[0]);
        assert_eq!(plan.resume_row, 0);
        assert!(plan.kept[0].is_empty());
    }

    #[test]
    fn commit_caps_and_prefers_fresh() {
        let mut incr = GroupIncremental::new(1 << 20);
        let old: Vec<Checkpoint> = (1..=SIMD_MAX_CKPTS).map(|i| ckpt(i, 0)).collect();
        // One capture colliding with old row 3, one at a new row: the
        // merge overflows the cap by exactly one entry.
        let caps = [
            GroupCapture {
                row: 3,
                lanes: vec![Some((vec![7; 4], vec![-1; 4]))],
            },
            GroupCapture {
                row: 10,
                lanes: vec![Some((vec![9; 4], vec![-2; 4]))],
            },
        ];
        incr.commit(&[12], vec![old], caps.to_vec(), 5, &[50]);
        let got = incr.store.take_split(12);
        assert_eq!(got.len(), SIMD_MAX_CKPTS);
        let at3 = got.iter().find(|c| c.row == 3).unwrap();
        assert_eq!(at3.stamp, 5, "fresh capture wins the row collision");
        assert_eq!(at3.m, vec![7; 4]);
        assert!(got.iter().any(|c| c.row == 10));
        // Shallowest old row dropped to fit the cap.
        assert!(!got.iter().any(|c| c.row == 1));
    }
}
