//! The interleaved multi-matrix kernel (paper Figures 6 and 7).
//!
//! A *group* is a run of consecutive splits `r0, r0+1, …, r0+lanes−1`.
//! Lane `l` computes the matrix of split `r_l = r0 + l`. The sweep runs
//! over sequence positions: row `p` (prefix residue) and column `q`
//! (suffix residue), `q ∈ [r0, m)`. At `(p, q)` every lane aligns the
//! same residue pair `(S[p], S[q])`, so the exchange value is looked up
//! once and splatted — the whole point of grouping *neighbouring*
//! matrices.
//!
//! Two sweeps implement the same recurrence:
//!
//! * [`align_group_striped`] — the historical **lookup** sweep: each
//!   cell gathers `E(S[p], S[q])` through the narrowed exchange table
//!   (`seq[q] → table[row][seq[q]]`, two dependent loads per cell);
//! * [`align_group_profile`] — the **query-profile** sweep: the
//!   exchange matrix is pre-unrolled along the sequence
//!   ([`repro_align::QueryProfile`]), so each cell issues a single
//!   contiguous load `prow[qi]`. The profile is built once per
//!   sequence and shared by every group and every realignment.
//!
//! Both are generic over the lane element: `i16` (saturating, the
//! paper's "shorts") or `i32` (wrapping, bit-identical to the scalar
//! reference — the saturation-promotion path).
//!
//! Border corrections:
//! * **left**: lane `l` has no column `q < r_l`; those cells are forced
//!   to 0, which doubles as the virtual zero column for the lane's first
//!   real column (only the first `lanes−1` columns need this);
//! * **bottom**: lane `l`'s matrix ends at row `r_l − 1`; its bottom row
//!   is captured when that row completes, and deeper rows of the lane
//!   are dead weight (the paper's speculation cost).
//! * **override**: cell `(p, q)` represents sequence pair `(p, q)` in
//!   *every* lane, so the triangle mask is lane-uniform — one scalar bit
//!   test zeroes all lanes.

use crate::lanes::{SimdElem, SimdVec};
use repro_align::{stripe_for_bytes, QueryProfile, Score, Scoring};
use repro_core::OverrideTriangle;

/// Per-lane results of one group alignment.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// First split in the group.
    pub r0: usize,
    /// Number of live lanes (the final group of a sequence may be short).
    pub lanes: usize,
    /// Per-lane bottom rows, widened to the scalar score type; entry `l`
    /// is the bottom row of split `r0 + l` (length `m − r0 − l`).
    pub rows: Vec<Vec<Score>>,
    /// Logical cells (sum over lanes of each split's own matrix size) —
    /// comparable with the sequential engine's counters.
    pub cells: u64,
    /// Vector-sweep cells (`rows × width`), the actual SIMD work incl.
    /// dead lanes; `cells / (vector_cells × LANES)` is lane utilisation.
    pub vector_cells: u64,
    /// `true` iff any lane saturated at the element's `MAX`; the caller
    /// must recompute the group exactly (promote `i16 → i32`, or fall
    /// back to the scalar kernel).
    pub saturated: bool,
}

/// Stripe width for a group sweep of `lanes` lanes of `elem_bytes`-byte
/// elements: the interleaved previous-row and `MaxY` arrays carry
/// `lanes × elem_bytes` bytes per column each, and the L1 rule
/// ([`repro_align::stripe_for_bytes`]) bounds their combined footprint.
pub const fn group_stripe(lanes: usize, elem_bytes: usize) -> usize {
    stripe_for_bytes(lanes * elem_bytes)
}

/// Default stripe width for an 8-lane `i16` sweep (16 B per column per
/// array), derived from the same L1 rule every other width uses. Wider
/// lanes and promoted `i32` rows get proportionally narrower stripes —
/// see [`group_stripe`].
pub const DEFAULT_GROUP_STRIPE: usize = group_stripe(8, 2);

/// Align the group of `lanes` consecutive splits starting at `r0`
/// (`1 ≤ r0`, `r0 + lanes − 1 ≤ m − 1`) in one interleaved sweep.
/// `triangle = None` means the unmasked first pass.
pub fn align_group<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
) -> GroupResult {
    align_group_striped::<V>(seq, scoring, r0, lanes, triangle, usize::MAX)
}

/// [`align_group`] computed in vertical stripes of `stripe` columns —
/// the cache-aware traversal of paper §4.1 ("we compute a section of
/// the row that fits in a third of the first-level cache, after which
/// we compute the section of the row below it"). Bit-identical results;
/// only the traversal order and the cache behaviour change.
///
/// This is the per-cell **lookup** sweep; [`align_group_profile`] is
/// the faster query-profile variant the engines use.
pub fn align_group_striped<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
) -> GroupResult {
    align_group_lookup_impl::<V>(seq, scoring, r0, lanes, triangle, stripe)
}

/// The query-profile sweep: identical recurrence and results to
/// [`align_group_striped`], but the per-cell substitution lookup is
/// replaced by one contiguous load from `profile` (built once per
/// sequence with the matching element width). `profile.len()` must
/// equal `seq.len()`.
pub fn align_group_profile<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<V::Elem>,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
) -> GroupResult {
    align_group_profile_impl::<V>(seq, scoring, profile, r0, lanes, triangle, stripe)
}

/// Shared prologue: bounds checks, gap narrowing, state allocation.
struct SweepState<V: SimdVec> {
    rmax: usize,
    width: usize,
    vopen: V,
    vext: V,
    mrow: Vec<V>,
    maxy: Vec<V>,
    maxx_carry: Vec<V>,
    edge: Vec<V>,
    rows: Vec<Vec<Score>>,
    sat_acc: V,
}

#[inline(always)]
fn sweep_prologue<V: SimdVec>(
    m: usize,
    scoring: &Scoring,
    r0: usize,
    lanes: usize,
    stripe: usize,
) -> SweepState<V> {
    assert!(lanes >= 1 && lanes <= V::LANES, "bad lane count");
    assert!(
        r0 >= 1 && r0 + lanes - 1 <= m.saturating_sub(1),
        "group out of range"
    );
    assert!(stripe > 0, "stripe width must be positive");
    let rmax = r0 + lanes - 1; // largest split ⇒ deepest row rmax−1
    let width = m - r0; // columns q ∈ [r0, m)

    let gap_open =
        V::Elem::from_score(scoring.gaps.open).expect("gap-open penalty must fit the SIMD element");
    let gap_ext = V::Elem::from_score(scoring.gaps.extend)
        .expect("gap-extend penalty must fit the SIMD element");

    let neg = V::splat(V::Elem::NEG_INF);
    let zero = V::splat(V::Elem::ZERO);
    SweepState {
        rmax,
        width,
        vopen: V::splat(gap_open),
        vext: V::splat(gap_ext),
        // Interleaved previous-row and MaxY arrays (Figure 7): element qi
        // packs the `lanes` matrices' entries for column q = r0 + qi.
        mrow: vec![zero; width],
        maxy: vec![neg; width],
        // Per-row carries across stripe boundaries (cf. the scalar striped
        // kernel): the running horizontal-gap maximum and the previous
        // stripe's last-column value (the next stripe's diagonal input).
        maxx_carry: vec![neg; rmax],
        edge: vec![zero; rmax],
        rows: (0..lanes).map(|l| vec![0; m - (r0 + l)]).collect(),
        // Saturation is detected by a running max (v is always ≥ 0),
        // checked once at the end instead of per cell.
        sat_acc: zero,
    }
}

fn finish<V: SimdVec>(st: SweepState<V>, m: usize, r0: usize, lanes: usize) -> GroupResult {
    let cells: u64 = (0..lanes)
        .map(|l| {
            let r = r0 + l;
            r as u64 * (m - r) as u64
        })
        .sum();
    GroupResult {
        r0,
        lanes,
        saturated: st.sat_acc.any_saturated(),
        rows: st.rows,
        cells,
        vector_cells: st.rmax as u64 * st.width as u64,
    }
}

/// Per-cell override probe, monomorphised so the first pass (no
/// triangle — the overwhelmingly common case) compiles to a loop with
/// no mask test at all. Mirrors the scalar kernel's `NoMask` /
/// `SplitMask` split: keeping the probe out of the unmasked loop frees
/// enough vector registers that the whole recurrence stays resident
/// (with the probe inline, LLVM spills every `ymm` value to the stack
/// and the 16-lane kernel runs at less than half speed).
trait TriProbe: Copy {
    /// `true` iff cell `(p, q)` is overridden to zero.
    fn hit(self, p: usize, q: usize) -> bool;
}

/// First-pass probe: nothing is ever overridden.
#[derive(Clone, Copy)]
struct NoTri;

impl TriProbe for NoTri {
    #[inline(always)]
    fn hit(self, _p: usize, _q: usize) -> bool {
        false
    }
}

impl TriProbe for &OverrideTriangle {
    #[inline(always)]
    fn hit(self, p: usize, q: usize) -> bool {
        // p < q holds for every cell that belongs to any live lane.
        p < q && self.get(p, q)
    }
}

/// The two sweep bodies are textually parallel; this macro holds the
/// shared stripe/row/column loop so the lookup and profile variants
/// differ only in how `exch` is produced (`$row_setup` runs once per
/// row, `$cell_exch` once per cell). A macro rather than a closure
/// keeps everything monomorphic and `inline(always)`-friendly for the
/// `#[target_feature]` trampolines in [`crate::dispatch`].
macro_rules! sweep_body {
    ($V:ty, $st:ident, $seq:ident, $r0:ident, $lanes:ident, $tri:ident, $stripe:ident,
     |$p:ident| $row_setup:expr, |$rowctx:ident, $qi:ident| $cell_exch:expr) => {{
        let mut x0 = 0;
        while x0 < $st.width {
            let x1 = x0.saturating_add($stripe).min($st.width);
            // Row p consumes row p−1's *old* edge value; rows run top to
            // bottom, so carry it across one iteration.
            let mut above_old_edge = <$V>::splat(SimdElem::ZERO);
            for $p in 0..$st.rmax {
                let my_old_edge = $st.edge[$p];
                let $rowctx = $row_setup;
                let mut maxx = if x0 == 0 {
                    <$V>::splat(SimdElem::NEG_INF)
                } else {
                    $st.maxx_carry[$p]
                };
                let mut diag = if x0 == 0 || $p == 0 {
                    <$V>::splat(SimdElem::ZERO)
                } else {
                    above_old_edge
                };
                for $qi in x0..x1 {
                    let up = $st.mrow[$qi];
                    let exch = $cell_exch;
                    let mut v = diag
                        .max(maxx)
                        .max($st.maxy[$qi])
                        .adds(<$V>::splat(exch))
                        .max(<$V>::splat(SimdElem::ZERO));
                    // Lane-uniform override masking (monomorphised away on
                    // the first pass) and the left-border correction (lane l
                    // is active iff q ≥ r0 + l); both fire on a sparse
                    // subset of cells.
                    if $tri.hit($p, $r0 + $qi) {
                        v = <$V>::splat(SimdElem::ZERO);
                    }
                    if $qi + 1 < $lanes {
                        v = v.zero_lanes_from($qi + 1);
                    }
                    $st.sat_acc = $st.sat_acc.max(v);
                    $st.mrow[$qi] = v;
                    let cand = diag.subs($st.vopen);
                    maxx = cand.max(maxx).subs($st.vext);
                    $st.maxy[$qi] = cand.max($st.maxy[$qi]).subs($st.vext);
                    diag = up;
                }
                $st.maxx_carry[$p] = maxx;
                $st.edge[$p] = $st.mrow[x1 - 1];
                above_old_edge = my_old_edge;
                // Bottom-border capture for this stripe's segment: row p is
                // the bottom row of lane l = p + 1 − r0 (split r_l = p + 1),
                // and segment values are final once computed.
                if $p + 1 >= $r0 {
                    let l = $p + 1 - $r0;
                    if l < $lanes {
                        let rl = $r0 + l;
                        for qi in x0.max(rl - $r0)..x1 {
                            $st.rows[l][$r0 + qi - rl] = $st.mrow[qi].get(l).to_score();
                        }
                    }
                }
            }
            x0 = x1;
        }
    }};
}

#[inline(always)]
pub(crate) fn align_group_lookup_impl<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
) -> GroupResult {
    match triangle.filter(|t| !t.is_empty()) {
        None => lookup_sweep::<V, NoTri>(seq, scoring, r0, lanes, NoTri, stripe),
        Some(t) => lookup_sweep::<V, &OverrideTriangle>(seq, scoring, r0, lanes, t, stripe),
    }
}

#[inline(always)]
fn lookup_sweep<V: SimdVec, T: TriProbe>(
    seq: &[u8],
    scoring: &Scoring,
    r0: usize,
    lanes: usize,
    tri: T,
    stripe: usize,
) -> GroupResult {
    let m = seq.len();
    let mut st = sweep_prologue::<V>(m, scoring, r0, lanes, stripe);

    // One-time narrowing of the exchange table to the lane element keeps
    // the hot loop free of checked conversions.
    let k = scoring.exchange.alphabet().len();
    let exch: Vec<V::Elem> = (0..k * k)
        .map(|i| {
            V::Elem::from_score(scoring.exchange.score((i / k) as u8, (i % k) as u8))
                .expect("exchange scores must fit the SIMD element")
        })
        .collect();

    sweep_body!(
        V,
        st,
        seq,
        r0,
        lanes,
        tri,
        stripe,
        |p| &exch[seq[p] as usize * k..(seq[p] as usize + 1) * k],
        |exch_row, qi| exch_row[seq[r0 + qi] as usize]
    );
    finish(st, m, r0, lanes)
}

#[inline(always)]
pub(crate) fn align_group_profile_impl<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<V::Elem>,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
) -> GroupResult {
    match triangle.filter(|t| !t.is_empty()) {
        None => profile_sweep::<V, NoTri>(seq, scoring, profile, r0, lanes, NoTri, stripe),
        Some(t) => {
            profile_sweep::<V, &OverrideTriangle>(seq, scoring, profile, r0, lanes, t, stripe)
        }
    }
}

#[inline(always)]
fn profile_sweep<V: SimdVec, T: TriProbe>(
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<V::Elem>,
    r0: usize,
    lanes: usize,
    tri: T,
    stripe: usize,
) -> GroupResult {
    let m = seq.len();
    assert_eq!(profile.len(), m, "profile must cover the whole sequence");
    let mut st = sweep_prologue::<V>(m, scoring, r0, lanes, stripe);

    sweep_body!(
        V,
        st,
        seq,
        r0,
        lanes,
        tri,
        stripe,
        |p| profile.row(seq[p], r0),
        |prow, qi| prow[qi]
    );
    finish(st, m, r0, lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::{I16x16, I16x4, I16x8, I32x16, I32x8};
    use repro_align::{sw_last_row, NoMask, Seq};
    use repro_core::SplitMask;

    fn scalar_row(
        seq: &Seq,
        scoring: &Scoring,
        r: usize,
        t: Option<&OverrideTriangle>,
    ) -> Vec<Score> {
        let (prefix, suffix) = seq.split(r);
        match t {
            Some(t) => sw_last_row(prefix, suffix, scoring, SplitMask::new(t, r)).row,
            None => sw_last_row(prefix, suffix, scoring, NoMask).row,
        }
    }

    #[test]
    fn group_matches_scalar_per_split_unmasked() {
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGT").unwrap();
        let scoring = Scoring::dna_example();
        for r0 in [1, 3, 7, 15] {
            let lanes = 4.min(seq.len() - 1 - r0 + 1).min(4);
            let g = align_group::<I16x4>(seq.codes(), &scoring, r0, lanes, None);
            for l in 0..lanes {
                let want = scalar_row(&seq, &scoring, r0 + l, None);
                assert_eq!(g.rows[l], want, "split {} in group r0={r0}", r0 + l);
            }
        }
    }

    #[test]
    fn group_matches_scalar_with_mask() {
        let seq = Seq::dna("ATGCATGCATGCATGC").unwrap();
        let scoring = Scoring::dna_example();
        let mut t = OverrideTriangle::new(seq.len());
        for &(p, q) in &[(0, 4), (1, 5), (2, 6), (3, 7), (5, 13), (2, 11)] {
            t.set(p, q);
        }
        for r0 in [1, 5, 9] {
            let g = align_group::<I16x8>(seq.codes(), &scoring, r0, 4, Some(&t));
            for l in 0..4 {
                let want = scalar_row(&seq, &scoring, r0 + l, Some(&t));
                assert_eq!(g.rows[l], want, "masked split {}", r0 + l);
            }
        }
    }

    #[test]
    fn eight_lanes_match_scalar() {
        let seq = Seq::protein("MGEKALVPYRLQHCERSTMGEKALVPYRWFND").unwrap();
        let scoring = Scoring::protein_default();
        let g = align_group::<I16x8>(seq.codes(), &scoring, 5, 8, None);
        assert!(!g.saturated);
        for l in 0..8 {
            let want = scalar_row(&seq, &scoring, 5 + l, None);
            assert_eq!(g.rows[l], want, "split {}", 5 + l);
        }
    }

    #[test]
    fn sixteen_lanes_match_scalar() {
        let seq = Seq::protein("MGEKALVPYRLQHCERSTMGEKALVPYRWFNDAGHTKLMNPQ").unwrap();
        let scoring = Scoring::protein_default();
        let g = align_group::<I16x16>(seq.codes(), &scoring, 7, 16, None);
        assert!(!g.saturated);
        for l in 0..16 {
            let want = scalar_row(&seq, &scoring, 7 + l, None);
            assert_eq!(g.rows[l], want, "split {}", 7 + l);
        }
    }

    #[test]
    fn profile_sweep_matches_lookup_sweep() {
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGTAACCGGTTAC").unwrap();
        let scoring = Scoring::dna_example();
        let prof = QueryProfile::new_narrow(&scoring, seq.codes()).unwrap();
        let mut t = OverrideTriangle::new(seq.len());
        for &(p, q) in &[(0, 4), (3, 9), (7, 20)] {
            t.set(p, q);
        }
        for tri in [None, Some(&t)] {
            for (r0, lanes) in [(1, 8), (5, 8), (9, 4), (20, 2)] {
                let lookup = align_group_striped::<I16x8>(seq.codes(), &scoring, r0, lanes, tri, 7);
                let profile =
                    align_group_profile::<I16x8>(seq.codes(), &scoring, &prof, r0, lanes, tri, 7);
                assert_eq!(profile.rows, lookup.rows, "r0={r0} lanes={lanes}");
                assert_eq!(profile.cells, lookup.cells);
                assert_eq!(profile.vector_cells, lookup.vector_cells);
            }
        }
    }

    #[test]
    fn wide_lanes_match_scalar_exactly() {
        // The i32 promotion sweep is the scalar recurrence, vectorised:
        // identical rows even where i16 would clamp.
        let seq = Seq::dna(&"A".repeat(80)).unwrap();
        let scoring = Scoring::new(
            repro_align::ExchangeMatrix::match_mismatch(repro_align::Alphabet::Dna, 1000, -1),
            repro_align::GapPenalties::new(2, 1),
        );
        let prof = QueryProfile::new_wide(&scoring, seq.codes());
        let g = align_group_profile::<I32x8>(seq.codes(), &scoring, &prof, 38, 8, None, 64);
        assert!(!g.saturated);
        for l in 0..8 {
            let want = scalar_row(&seq, &scoring, 38 + l, None);
            assert_eq!(g.rows[l], want, "wide split {}", 38 + l);
        }
        let g16 = align_group_profile::<I32x16>(seq.codes(), &scoring, &prof, 30, 16, None, 64);
        assert!(!g16.saturated);
        for l in 0..16 {
            let want = scalar_row(&seq, &scoring, 30 + l, None);
            assert_eq!(g16.rows[l], want, "wide x16 split {}", 30 + l);
        }
    }

    #[test]
    fn short_tail_group() {
        // Group at the end of the sequence with fewer live lanes.
        let seq = Seq::dna("ATGCATGCAT").unwrap();
        let scoring = Scoring::dna_example();
        let g = align_group::<I16x4>(seq.codes(), &scoring, 8, 2, None);
        assert_eq!(g.lanes, 2);
        for l in 0..2 {
            let want = scalar_row(&seq, &scoring, 8 + l, None);
            assert_eq!(g.rows[l], want);
        }
    }

    #[test]
    fn single_lane_group() {
        let seq = Seq::dna("ATGCATGC").unwrap();
        let scoring = Scoring::dna_example();
        let g = align_group::<I16x4>(seq.codes(), &scoring, 4, 1, None);
        assert_eq!(g.rows[0], scalar_row(&seq, &scoring, 4, None));
    }

    #[test]
    fn cells_accounting() {
        let seq = Seq::dna("ATGCATGCATGC").unwrap(); // m = 12
        let scoring = Scoring::dna_example();
        let g = align_group::<I16x4>(seq.codes(), &scoring, 2, 4, None);
        // Logical: Σ r(m−r) for r = 2..=5.
        let want: u64 = (2..=5).map(|r| r * (12 - r)).sum::<usize>() as u64;
        assert_eq!(g.cells, want);
        // Vector sweep: rmax × width = 5 × 10.
        assert_eq!(g.vector_cells, 50);
    }

    #[test]
    fn saturation_is_detected() {
        // A long perfect repeat with huge match scores overflows i16.
        let seq = Seq::dna(&"A".repeat(80)).unwrap();
        let scoring = Scoring::new(
            repro_align::ExchangeMatrix::match_mismatch(repro_align::Alphabet::Dna, 1000, -1),
            repro_align::GapPenalties::new(2, 1),
        );
        let g = align_group::<I16x4>(seq.codes(), &scoring, 38, 4, None);
        assert!(
            g.saturated,
            "40 000-ish scores must trip the saturation flag"
        );
    }

    #[test]
    fn striped_group_matches_unstriped() {
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGTAACCGGTTAC").unwrap();
        let scoring = Scoring::dna_example();
        let mut t = OverrideTriangle::new(seq.len());
        for &(p, q) in &[(0, 4), (3, 9), (7, 20)] {
            t.set(p, q);
        }
        for tri in [None, Some(&t)] {
            let reference = align_group::<I16x8>(seq.codes(), &scoring, 5, 8, tri);
            for w in [1usize, 3, 7, 16, 100] {
                let striped =
                    crate::group::align_group_striped::<I16x8>(seq.codes(), &scoring, 5, 8, tri, w);
                assert_eq!(
                    striped.rows,
                    reference.rows,
                    "stripe {w}, mask {:?}",
                    tri.is_some()
                );
                assert_eq!(striped.cells, reference.cells);
            }
        }
    }

    #[test]
    fn derived_group_stripes() {
        // 8 × i16 = 16 B per column per array → 512 columns under the
        // 16 KiB two-array budget; 16 lanes halve it; promotion to i32
        // halves it again.
        assert_eq!(DEFAULT_GROUP_STRIPE, group_stripe(8, 2));
        assert_eq!(group_stripe(16, 2), DEFAULT_GROUP_STRIPE / 2);
        assert_eq!(group_stripe(16, 4), DEFAULT_GROUP_STRIPE / 4);
        assert!(group_stripe(16, 4) * 2 * 16 * 4 <= repro_align::STRIPE_L1_BUDGET);
    }

    #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
    #[test]
    fn sse2_kernel_matches_portable() {
        use crate::lanes::sse2::I16x8Sse2;
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGTAACCGGTT").unwrap();
        let scoring = Scoring::dna_example();
        let a = align_group::<I16x8>(seq.codes(), &scoring, 3, 8, None);
        let b = align_group::<I16x8Sse2>(seq.codes(), &scoring, 3, 8, None);
        assert_eq!(a.rows, b.rows);
    }

    #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
    #[test]
    fn avx2_kernel_matches_portable() {
        use crate::lanes::avx2::I16x16Avx2;
        if !crate::test_support::require_avx2("avx2_kernel_matches_portable") {
            return;
        }
        let seq = Seq::protein("MGEKALVPYRLQHCERSTMGEKALVPYRWFNDAGHTKLMNPQ").unwrap();
        let scoring = Scoring::protein_default();
        let prof = QueryProfile::new_narrow(&scoring, seq.codes()).unwrap();
        let a = align_group::<I16x16>(seq.codes(), &scoring, 3, 16, None);
        let b = align_group::<I16x16Avx2>(seq.codes(), &scoring, 3, 16, None);
        assert_eq!(a.rows, b.rows);
        let c = align_group_profile::<I16x16Avx2>(seq.codes(), &scoring, &prof, 3, 16, None, 16);
        assert_eq!(a.rows, c.rows);
    }
}
