//! The interleaved multi-matrix kernel (paper Figures 6 and 7).
//!
//! A *group* is a set of splits swept together. Historically a run of
//! consecutive splits `r0, r0+1, …, r0+lanes−1`; the kernel is now
//! generic over any strictly ascending split set `rs` (lane `l`
//! computes the matrix of split `rs[l]`), which is what lets the
//! incremental layer *compact* a group — re-packing only the lanes
//! that actually need work. The sweep runs over sequence positions:
//! row `p` (prefix residue) and column `q` (suffix residue),
//! `q ∈ [rs[0], m)`. At `(p, q)` every lane aligns the same residue
//! pair `(S[p], S[q])`, so the exchange value is looked up once and
//! splatted — neighbouring matrices share cells, arbitrary subsets of
//! them still share the splat.
//!
//! Two sweeps implement the same recurrence:
//!
//! * [`align_group_striped`] — the historical **lookup** sweep: each
//!   cell gathers `E(S[p], S[q])` through the narrowed exchange table
//!   (`seq[q] → table[row][seq[q]]`, two dependent loads per cell);
//! * [`align_group_profile`] — the **query-profile** sweep: the
//!   exchange matrix is pre-unrolled along the sequence
//!   ([`repro_align::QueryProfile`]), so each cell issues a single
//!   contiguous load `prow[qi]`. The profile is built once per
//!   sequence and shared by every group and every realignment.
//!
//! Both are generic over the lane element: `i16` (saturating, the
//! paper's "shorts") or `i32` (wrapping, bit-identical to the scalar
//! reference — the saturation-promotion path).
//!
//! Incremental resume ([`align_group_profile_at`]): the kernel can
//! start at row `start` from restored inter-row state (per-lane `m` /
//! `maxy` over each lane's own columns, the exact state a scalar
//! [`repro_align::Checkpoint`] holds) and capture the same state at
//! requested rows on the way down. Columns left of a lane's split
//! (`q < rs[l]`) hold `m = 0` (the border forces them to zero every
//! row) and a constant `maxy = −open − ext` (the running gap maximum
//! over a column of zeros), so the packed state is reconstructed from
//! per-lane checkpoints alone — no interleaved state is ever stored.
//!
//! Border corrections:
//! * **left**: lane `l` has no column `q < rs[l]`; those cells are
//!   forced to 0, which doubles as the virtual zero column for the
//!   lane's first real column (only columns `q < rs[last]` need this);
//! * **bottom**: lane `l`'s matrix ends at row `rs[l] − 1`; its bottom
//!   row is captured when that row completes, and deeper rows of the
//!   lane are dead weight (the paper's speculation cost).
//! * **override**: cell `(p, q)` represents sequence pair `(p, q)` in
//!   *every* lane, so the triangle mask is lane-uniform — one scalar
//!   bit test zeroes all lanes.

use crate::lanes::{SimdElem, SimdVec};
use repro_align::{stripe_for_bytes, QueryProfile, Score, Scoring};
use repro_core::OverrideTriangle;

/// Per-lane results of one group alignment.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// First (smallest) split in the group.
    pub r0: usize,
    /// Number of live lanes (the final group of a sequence may be short).
    pub lanes: usize,
    /// Per-lane bottom rows, widened to the scalar score type; entry `l`
    /// is the bottom row of the group's `l`-th split (length `m − r`).
    pub rows: Vec<Vec<Score>>,
    /// Logical cells actually computed (sum over lanes of each split's
    /// rows below the resume row × its own columns) — comparable with
    /// the sequential engine's counters.
    pub cells: u64,
    /// Vector-sweep cells (`rows × width`), the actual SIMD work incl.
    /// dead lanes; `cells / (vector_cells × LANES)` is lane utilisation.
    pub vector_cells: u64,
    /// `true` iff any lane saturated at the element's `MAX`; the caller
    /// must recompute the group exactly (promote `i16 → i32`, or fall
    /// back to the scalar kernel).
    pub saturated: bool,
}

/// One packed lane's restored inter-row state: the kernel's `m` and
/// `maxy` over the lane's *own* columns (`q ∈ [r, m)`), exactly the
/// layout of a scalar [`repro_align::Checkpoint`] for that split.
#[derive(Debug, Clone, Copy)]
pub struct LaneResume<'a> {
    /// `M[row−1][x]` for the lane's columns.
    pub m: &'a [Score],
    /// Per-column vertical-gap running maxima after row `row−1`.
    pub maxy: &'a [Score],
}

/// Resume input for a group sweep: every packed lane's state after rows
/// `0..row` (one entry per lane, same order as `rs`). All lanes resume
/// from the same row — the engines pick the deepest checkpoint row that
/// is valid and present for *every* packed lane.
#[derive(Debug, Clone)]
pub struct GroupResume<'a> {
    /// Rows `0..row` are already reflected in the state (`row ≥ 1`).
    pub row: usize,
    /// Per-lane restored state, `lanes[l]` for split `rs[l]`.
    pub lanes: Vec<LaneResume<'a>>,
}

/// One inter-row snapshot captured during a group sweep, de-interleaved
/// back to per-lane scalar state.
#[derive(Debug, Clone)]
pub struct GroupCapture {
    /// The snapshot reflects rows `0..row`.
    pub row: usize,
    /// Per packed lane: `(m, maxy)` over the lane's own columns — the
    /// exact contents of a scalar checkpoint at this row. `None` for
    /// lanes whose split `rs[l] ≤ row` (their matrix ended above it).
    pub lanes: Vec<Option<(Vec<Score>, Vec<Score>)>>,
}

/// Stripe width for a group sweep of `lanes` lanes of `elem_bytes`-byte
/// elements: the interleaved previous-row and `MaxY` arrays carry
/// `lanes × elem_bytes` bytes per column each, and the L1 rule
/// ([`repro_align::stripe_for_bytes`]) bounds their combined footprint.
pub const fn group_stripe(lanes: usize, elem_bytes: usize) -> usize {
    stripe_for_bytes(lanes * elem_bytes)
}

/// Default stripe width for an 8-lane `i16` sweep (16 B per column per
/// array), derived from the same L1 rule every other width uses. Wider
/// lanes and promoted `i32` rows get proportionally narrower stripes —
/// see [`group_stripe`].
pub const DEFAULT_GROUP_STRIPE: usize = group_stripe(8, 2);

/// Align the group of `lanes` consecutive splits starting at `r0`
/// (`1 ≤ r0`, `r0 + lanes − 1 ≤ m − 1`) in one interleaved sweep.
/// `triangle = None` means the unmasked first pass.
pub fn align_group<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
) -> GroupResult {
    align_group_striped::<V>(seq, scoring, r0, lanes, triangle, usize::MAX)
}

/// [`align_group`] computed in vertical stripes of `stripe` columns —
/// the cache-aware traversal of paper §4.1 ("we compute a section of
/// the row that fits in a third of the first-level cache, after which
/// we compute the section of the row below it"). Bit-identical results;
/// only the traversal order and the cache behaviour change.
///
/// This is the per-cell **lookup** sweep; [`align_group_profile`] is
/// the faster query-profile variant the engines use.
pub fn align_group_striped<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
) -> GroupResult {
    align_group_lookup_impl::<V>(seq, scoring, r0, lanes, triangle, stripe)
}

/// The query-profile sweep: identical recurrence and results to
/// [`align_group_striped`], but the per-cell substitution lookup is
/// replaced by one contiguous load from `profile` (built once per
/// sequence with the matching element width). `profile.len()` must
/// equal `seq.len()`.
pub fn align_group_profile<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<V::Elem>,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
) -> GroupResult {
    align_group_profile_impl::<V>(seq, scoring, profile, r0, lanes, triangle, stripe)
}

/// The generalised profile sweep: an arbitrary strictly ascending split
/// set `rs`, optional mid-matrix `resume`, and inter-row state capture
/// at each of `capture_rows` (strictly ascending, each strictly between
/// the resume row and `rs[last]`). With `rs` consecutive, `resume =
/// None` and no captures this is exactly [`align_group_profile`].
#[allow(clippy::too_many_arguments)] // mirrors the kernel's full state
pub fn align_group_profile_at<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<V::Elem>,
    rs: &[usize],
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
    resume: Option<&GroupResume<'_>>,
    capture_rows: &[usize],
) -> (GroupResult, Vec<GroupCapture>) {
    align_group_profile_at_impl::<V>(
        seq,
        scoring,
        profile,
        rs,
        triangle,
        stripe,
        resume,
        capture_rows,
    )
}

/// Shared sweep state: interleaved arrays plus per-row stripe carries.
struct SweepState<V: SimdVec> {
    rmax: usize,
    width: usize,
    vopen: V,
    vext: V,
    mrow: Vec<V>,
    maxy: Vec<V>,
    maxx_carry: Vec<V>,
    edge: Vec<V>,
    rows: Vec<Vec<Score>>,
    sat_acc: V,
    /// Interleaved capture buffers, parallel to `Geom::capture_rows`.
    captures: Vec<(Vec<V>, Vec<V>)>,
}

/// Sweep geometry derived from the split set: everything the hot loop
/// needs that does not change per cell.
struct Geom<'a, V: SimdVec> {
    rs: &'a [usize],
    r0: usize,
    /// Columns `qi < border_cols` have at least one inactive lane.
    border_cols: usize,
    /// Active-lane count per bordered column (`rs` is ascending, so the
    /// active lanes are always a prefix).
    keep: Vec<usize>,
    /// `bottom[p] = Some(l)` iff row `p` is lane `l`'s bottom row
    /// (`rs[l] == p + 1`).
    bottom: Vec<Option<usize>>,
    /// First row to compute (rows `0..start` come from restored state).
    start: usize,
    /// The restored `mrow` at `start` — cross-stripe diagonal seed for
    /// the first computed row. Empty when `start == 0`.
    init_m: Vec<V>,
    capture_rows: &'a [usize],
}

#[inline(always)]
#[allow(clippy::needless_range_loop)] // index loops mirror the paper's pseudo code
fn sweep_prologue_at<'a, V: SimdVec>(
    m: usize,
    scoring: &Scoring,
    rs: &'a [usize],
    stripe: usize,
    resume: Option<&GroupResume<'_>>,
    capture_rows: &'a [usize],
) -> (SweepState<V>, Geom<'a, V>) {
    let lanes = rs.len();
    assert!(lanes >= 1 && lanes <= V::LANES, "bad lane count");
    assert!(
        rs.windows(2).all(|w| w[0] < w[1]),
        "splits must be strictly ascending"
    );
    let r0 = rs[0];
    let rmax = *rs.last().expect("non-empty split set");
    assert!(r0 >= 1 && rmax <= m.saturating_sub(1), "group out of range");
    assert!(stripe > 0, "stripe width must be positive");
    let width = m - r0; // columns q ∈ [r0, m)

    let gap_open =
        V::Elem::from_score(scoring.gaps.open).expect("gap-open penalty must fit the SIMD element");
    let gap_ext = V::Elem::from_score(scoring.gaps.extend)
        .expect("gap-extend penalty must fit the SIMD element");

    let neg = V::splat(V::Elem::NEG_INF);
    let zero = V::splat(V::Elem::ZERO);

    let start = resume.map_or(0, |rsm| rsm.row);
    assert!(start < r0, "resume row must precede every packed split");
    assert!(
        capture_rows.windows(2).all(|w| w[0] < w[1]),
        "capture rows must be strictly ascending"
    );
    assert!(
        capture_rows.iter().all(|&c| c > start && c < rmax),
        "capture rows must lie strictly between the resume row and rmax"
    );

    let border_cols = rmax - r0;
    let keep: Vec<usize> = (0..border_cols)
        .map(|qi| rs.partition_point(|&r| r <= r0 + qi))
        .collect();
    let mut bottom: Vec<Option<usize>> = vec![None; rmax];
    for (l, &r) in rs.iter().enumerate() {
        bottom[r - 1] = Some(l);
    }

    let (mrow, maxy, init_m, sat_acc) = match resume {
        None => (vec![zero; width], vec![neg; width], Vec::new(), zero),
        Some(rsm) => {
            assert!(rsm.row >= 1, "resume row must be at least 1");
            assert_eq!(rsm.lanes.len(), lanes, "one resume state per lane");
            for (l, st) in rsm.lanes.iter().enumerate() {
                assert_eq!(st.m.len(), m - rs[l], "lane {l} resume width");
                assert_eq!(st.maxy.len(), m - rs[l], "lane {l} resume width");
            }
            // Inactive columns (q < rs[l]) are forced to zero every row,
            // so after ≥ 1 rows their running vertical-gap maximum is
            // the constant `(0 − open) − ext` — reconstructed here, no
            // interleaved state needed.
            let inactive_maxy = V::Elem::ZERO.vsub(gap_open).vsub(gap_ext);
            let mut mrow = Vec::with_capacity(width);
            let mut maxy = Vec::with_capacity(width);
            for qi in 0..width {
                let q = r0 + qi;
                mrow.push(V::from_fn(|l| {
                    if l < lanes && q >= rs[l] {
                        V::Elem::from_score_sat(rsm.lanes[l].m[q - rs[l]])
                    } else {
                        V::Elem::ZERO
                    }
                }));
                maxy.push(V::from_fn(|l| {
                    if l < lanes && q >= rs[l] {
                        V::Elem::from_score_sat(rsm.lanes[l].maxy[q - rs[l]])
                    } else {
                        inactive_maxy
                    }
                }));
            }
            let init_m = mrow.clone();
            // Seed the saturation accumulator from the restored row so a
            // restored sentinel is never missed.
            let sat = mrow.iter().fold(zero, |acc, &v| acc.max(v));
            (mrow, maxy, init_m, sat)
        }
    };

    let st = SweepState {
        rmax,
        width,
        vopen: V::splat(gap_open),
        vext: V::splat(gap_ext),
        // Interleaved previous-row and MaxY arrays (Figure 7): element qi
        // packs the `lanes` matrices' entries for column q = r0 + qi.
        mrow,
        maxy,
        // Per-row carries across stripe boundaries (cf. the scalar striped
        // kernel): the running horizontal-gap maximum and the previous
        // stripe's last-column value (the next stripe's diagonal input).
        maxx_carry: vec![neg; rmax],
        edge: vec![zero; rmax],
        rows: rs.iter().map(|&r| vec![0; m - r]).collect(),
        sat_acc,
        captures: capture_rows
            .iter()
            .map(|_| (vec![zero; width], vec![zero; width]))
            .collect(),
    };
    let geom = Geom {
        rs,
        r0,
        border_cols,
        keep,
        bottom,
        start,
        init_m,
        capture_rows,
    };
    (st, geom)
}

fn finish<V: SimdVec>(
    st: SweepState<V>,
    geom: &Geom<'_, V>,
    m: usize,
) -> (GroupResult, Vec<GroupCapture>) {
    let cells: u64 = geom
        .rs
        .iter()
        .map(|&r| (r - geom.start) as u64 * (m - r) as u64)
        .sum();
    let captures = geom
        .capture_rows
        .iter()
        .zip(&st.captures)
        .map(|(&row, (mbuf, ybuf))| GroupCapture {
            row,
            lanes: geom
                .rs
                .iter()
                .enumerate()
                .map(|(l, &r)| {
                    if row >= r {
                        return None;
                    }
                    let off = r - geom.r0;
                    let cols = m - r;
                    let mut mj = Vec::with_capacity(cols);
                    let mut yj = Vec::with_capacity(cols);
                    for qi in off..st.width {
                        mj.push(mbuf[qi].get(l).to_score());
                        yj.push(ybuf[qi].get(l).to_score());
                    }
                    Some((mj, yj))
                })
                .collect(),
        })
        .collect();
    let result = GroupResult {
        r0: geom.r0,
        lanes: geom.rs.len(),
        saturated: st.sat_acc.any_saturated(),
        rows: st.rows,
        cells,
        vector_cells: (st.rmax - geom.start) as u64 * st.width as u64,
    };
    (result, captures)
}

/// Per-cell override probe, monomorphised so the first pass (no
/// triangle — the overwhelmingly common case) compiles to a loop with
/// no mask test at all. Mirrors the scalar kernel's `NoMask` /
/// `SplitMask` split: keeping the probe out of the unmasked loop frees
/// enough vector registers that the whole recurrence stays resident
/// (with the probe inline, LLVM spills every `ymm` value to the stack
/// and the 16-lane kernel runs at less than half speed).
trait TriProbe: Copy {
    /// `true` iff cell `(p, q)` is overridden to zero.
    fn hit(self, p: usize, q: usize) -> bool;
}

/// First-pass probe: nothing is ever overridden.
#[derive(Clone, Copy)]
struct NoTri;

impl TriProbe for NoTri {
    #[inline(always)]
    fn hit(self, _p: usize, _q: usize) -> bool {
        false
    }
}

impl TriProbe for &OverrideTriangle {
    #[inline(always)]
    fn hit(self, p: usize, q: usize) -> bool {
        // p < q holds for every cell that belongs to any live lane.
        p < q && self.get(p, q)
    }
}

/// The two sweep bodies are textually parallel; this macro holds the
/// shared stripe/row/column loop so the lookup and profile variants
/// differ only in how `exch` is produced (`$row_setup` runs once per
/// row, `$cell_exch` once per cell). A macro rather than a closure
/// keeps everything monomorphic and `inline(always)`-friendly for the
/// `#[target_feature]` trampolines in [`crate::dispatch`].
macro_rules! sweep_body {
    ($V:ty, $st:ident, $geom:ident, $tri:ident, $stripe:ident,
     |$p:ident| $row_setup:expr, |$rowctx:ident, $qi:ident| $cell_exch:expr) => {{
        let start = $geom.start;
        let mut x0 = 0;
        while x0 < $st.width {
            let x1 = x0.saturating_add($stripe).min($st.width);
            // Row p consumes row p−1's *old* edge value; rows run top to
            // bottom, so carry it across one iteration. For a resumed
            // sweep the first computed row's diagonal input is the
            // restored row's previous-stripe edge.
            let mut above_old_edge = if start > 0 && x0 > 0 {
                $geom.init_m[x0 - 1]
            } else {
                <$V>::splat(SimdElem::ZERO)
            };
            let mut cap_idx = 0usize;
            for $p in start..$st.rmax {
                let my_old_edge = $st.edge[$p];
                let $rowctx = $row_setup;
                let mut maxx = if x0 == 0 {
                    <$V>::splat(SimdElem::NEG_INF)
                } else {
                    $st.maxx_carry[$p]
                };
                // At x0 == 0 the diagonal input is the virtual zero
                // column; elsewhere it is the row above's previous-stripe
                // edge (seeded before the loop for the first row: zero at
                // the matrix top, the restored row's edge on a resume).
                let mut diag = if x0 == 0 {
                    <$V>::splat(SimdElem::ZERO)
                } else {
                    above_old_edge
                };
                for $qi in x0..x1 {
                    let up = $st.mrow[$qi];
                    let exch = $cell_exch;
                    let mut v = diag
                        .max(maxx)
                        .max($st.maxy[$qi])
                        .adds(<$V>::splat(exch))
                        .max(<$V>::splat(SimdElem::ZERO));
                    // Lane-uniform override masking (monomorphised away on
                    // the first pass) and the left-border correction (lane
                    // l is active iff q ≥ rs[l]; active lanes are a prefix
                    // because rs is ascending); both fire on a sparse
                    // subset of cells.
                    if $tri.hit($p, $geom.r0 + $qi) {
                        v = <$V>::splat(SimdElem::ZERO);
                    }
                    if $qi < $geom.border_cols {
                        v = v.zero_lanes_from($geom.keep[$qi]);
                    }
                    $st.sat_acc = $st.sat_acc.max(v);
                    $st.mrow[$qi] = v;
                    let cand = diag.subs($st.vopen);
                    maxx = cand.max(maxx).subs($st.vext);
                    $st.maxy[$qi] = cand.max($st.maxy[$qi]).subs($st.vext);
                    diag = up;
                }
                $st.maxx_carry[$p] = maxx;
                $st.edge[$p] = $st.mrow[x1 - 1];
                above_old_edge = my_old_edge;
                // Bottom-border capture for this stripe's segment: row p is
                // the bottom row of lane l iff rs[l] = p + 1, and segment
                // values are final once computed.
                if let Some(l) = $geom.bottom[$p] {
                    let rl = $geom.rs[l];
                    for qi in x0.max(rl - $geom.r0)..x1 {
                        $st.rows[l][$geom.r0 + qi - rl] = $st.mrow[qi].get(l).to_score();
                    }
                }
                // Checkpoint capture: after row p the state reflects rows
                // 0..p+1 — exactly what a resume at row p+1 needs.
                while cap_idx < $geom.capture_rows.len()
                    && $geom.capture_rows[cap_idx] == $p + 1
                {
                    let (mbuf, ybuf) = &mut $st.captures[cap_idx];
                    mbuf[x0..x1].copy_from_slice(&$st.mrow[x0..x1]);
                    ybuf[x0..x1].copy_from_slice(&$st.maxy[x0..x1]);
                    cap_idx += 1;
                }
            }
            x0 = x1;
        }
    }};
}

#[inline(always)]
pub(crate) fn align_group_lookup_impl<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
) -> GroupResult {
    let rs: Vec<usize> = (0..lanes).map(|l| r0 + l).collect();
    match triangle.filter(|t| !t.is_empty()) {
        None => lookup_sweep::<V, NoTri>(seq, scoring, &rs, NoTri, stripe),
        Some(t) => lookup_sweep::<V, &OverrideTriangle>(seq, scoring, &rs, t, stripe),
    }
}

#[inline(always)]
fn lookup_sweep<V: SimdVec, T: TriProbe>(
    seq: &[u8],
    scoring: &Scoring,
    rs: &[usize],
    tri: T,
    stripe: usize,
) -> GroupResult {
    let m = seq.len();
    let (mut st, geom) = sweep_prologue_at::<V>(m, scoring, rs, stripe, None, &[]);

    // One-time narrowing of the exchange table to the lane element keeps
    // the hot loop free of checked conversions.
    let k = scoring.exchange.alphabet().len();
    let exch: Vec<V::Elem> = (0..k * k)
        .map(|i| {
            V::Elem::from_score(scoring.exchange.score((i / k) as u8, (i % k) as u8))
                .expect("exchange scores must fit the SIMD element")
        })
        .collect();

    sweep_body!(
        V,
        st,
        geom,
        tri,
        stripe,
        |p| &exch[seq[p] as usize * k..(seq[p] as usize + 1) * k],
        |exch_row, qi| exch_row[seq[geom.r0 + qi] as usize]
    );
    finish(st, &geom, m).0
}

#[inline(always)]
pub(crate) fn align_group_profile_impl<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<V::Elem>,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
) -> GroupResult {
    let rs: Vec<usize> = (0..lanes).map(|l| r0 + l).collect();
    align_group_profile_at_impl::<V>(seq, scoring, profile, &rs, triangle, stripe, None, &[]).0
}

#[inline(always)]
#[allow(clippy::too_many_arguments)] // mirrors the kernel's full state
pub(crate) fn align_group_profile_at_impl<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<V::Elem>,
    rs: &[usize],
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
    resume: Option<&GroupResume<'_>>,
    capture_rows: &[usize],
) -> (GroupResult, Vec<GroupCapture>) {
    match triangle.filter(|t| !t.is_empty()) {
        None => profile_sweep::<V, NoTri>(
            seq,
            scoring,
            profile,
            rs,
            NoTri,
            stripe,
            resume,
            capture_rows,
        ),
        Some(t) => profile_sweep::<V, &OverrideTriangle>(
            seq,
            scoring,
            profile,
            rs,
            t,
            stripe,
            resume,
            capture_rows,
        ),
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)] // mirrors the kernel's full state
fn profile_sweep<V: SimdVec, T: TriProbe>(
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<V::Elem>,
    rs: &[usize],
    tri: T,
    stripe: usize,
    resume: Option<&GroupResume<'_>>,
    capture_rows: &[usize],
) -> (GroupResult, Vec<GroupCapture>) {
    let m = seq.len();
    assert_eq!(profile.len(), m, "profile must cover the whole sequence");
    let (mut st, geom) = sweep_prologue_at::<V>(m, scoring, rs, stripe, resume, capture_rows);

    sweep_body!(
        V,
        st,
        geom,
        tri,
        stripe,
        |p| profile.row(seq[p], geom.r0),
        |prow, qi| prow[qi]
    );
    finish(st, &geom, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::{I16x16, I16x4, I16x8, I32x16, I32x8};
    use repro_align::{sw_last_row, NoMask, Seq};
    use repro_core::SplitMask;

    fn scalar_row(
        seq: &Seq,
        scoring: &Scoring,
        r: usize,
        t: Option<&OverrideTriangle>,
    ) -> Vec<Score> {
        let (prefix, suffix) = seq.split(r);
        match t {
            Some(t) => sw_last_row(prefix, suffix, scoring, SplitMask::new(t, r)).row,
            None => sw_last_row(prefix, suffix, scoring, NoMask).row,
        }
    }

    #[test]
    fn group_matches_scalar_per_split_unmasked() {
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGT").unwrap();
        let scoring = Scoring::dna_example();
        for r0 in [1, 3, 7, 15] {
            let lanes = 4.min(seq.len() - 1 - r0 + 1).min(4);
            let g = align_group::<I16x4>(seq.codes(), &scoring, r0, lanes, None);
            for l in 0..lanes {
                let want = scalar_row(&seq, &scoring, r0 + l, None);
                assert_eq!(g.rows[l], want, "split {} in group r0={r0}", r0 + l);
            }
        }
    }

    #[test]
    fn group_matches_scalar_with_mask() {
        let seq = Seq::dna("ATGCATGCATGCATGC").unwrap();
        let scoring = Scoring::dna_example();
        let mut t = OverrideTriangle::new(seq.len());
        for &(p, q) in &[(0, 4), (1, 5), (2, 6), (3, 7), (5, 13), (2, 11)] {
            t.set(p, q);
        }
        for r0 in [1, 5, 9] {
            let g = align_group::<I16x8>(seq.codes(), &scoring, r0, 4, Some(&t));
            for l in 0..4 {
                let want = scalar_row(&seq, &scoring, r0 + l, Some(&t));
                assert_eq!(g.rows[l], want, "masked split {}", r0 + l);
            }
        }
    }

    #[test]
    fn eight_lanes_match_scalar() {
        let seq = Seq::protein("MGEKALVPYRLQHCERSTMGEKALVPYRWFND").unwrap();
        let scoring = Scoring::protein_default();
        let g = align_group::<I16x8>(seq.codes(), &scoring, 5, 8, None);
        assert!(!g.saturated);
        for l in 0..8 {
            let want = scalar_row(&seq, &scoring, 5 + l, None);
            assert_eq!(g.rows[l], want, "split {}", 5 + l);
        }
    }

    #[test]
    fn sixteen_lanes_match_scalar() {
        let seq = Seq::protein("MGEKALVPYRLQHCERSTMGEKALVPYRWFNDAGHTKLMNPQ").unwrap();
        let scoring = Scoring::protein_default();
        let g = align_group::<I16x16>(seq.codes(), &scoring, 7, 16, None);
        assert!(!g.saturated);
        for l in 0..16 {
            let want = scalar_row(&seq, &scoring, 7 + l, None);
            assert_eq!(g.rows[l], want, "split {}", 7 + l);
        }
    }

    #[test]
    fn profile_sweep_matches_lookup_sweep() {
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGTAACCGGTTAC").unwrap();
        let scoring = Scoring::dna_example();
        let prof = QueryProfile::new_narrow(&scoring, seq.codes()).unwrap();
        let mut t = OverrideTriangle::new(seq.len());
        for &(p, q) in &[(0, 4), (3, 9), (7, 20)] {
            t.set(p, q);
        }
        for tri in [None, Some(&t)] {
            for (r0, lanes) in [(1, 8), (5, 8), (9, 4), (20, 2)] {
                let lookup = align_group_striped::<I16x8>(seq.codes(), &scoring, r0, lanes, tri, 7);
                let profile =
                    align_group_profile::<I16x8>(seq.codes(), &scoring, &prof, r0, lanes, tri, 7);
                assert_eq!(profile.rows, lookup.rows, "r0={r0} lanes={lanes}");
                assert_eq!(profile.cells, lookup.cells);
                assert_eq!(profile.vector_cells, lookup.vector_cells);
            }
        }
    }

    #[test]
    fn wide_lanes_match_scalar_exactly() {
        // The i32 promotion sweep is the scalar recurrence, vectorised:
        // identical rows even where i16 would clamp.
        let seq = Seq::dna(&"A".repeat(80)).unwrap();
        let scoring = Scoring::new(
            repro_align::ExchangeMatrix::match_mismatch(repro_align::Alphabet::Dna, 1000, -1),
            repro_align::GapPenalties::new(2, 1),
        );
        let prof = QueryProfile::new_wide(&scoring, seq.codes());
        let g = align_group_profile::<I32x8>(seq.codes(), &scoring, &prof, 38, 8, None, 64);
        assert!(!g.saturated);
        for l in 0..8 {
            let want = scalar_row(&seq, &scoring, 38 + l, None);
            assert_eq!(g.rows[l], want, "wide split {}", 38 + l);
        }
        let g16 = align_group_profile::<I32x16>(seq.codes(), &scoring, &prof, 30, 16, None, 64);
        assert!(!g16.saturated);
        for l in 0..16 {
            let want = scalar_row(&seq, &scoring, 30 + l, None);
            assert_eq!(g16.rows[l], want, "wide x16 split {}", 30 + l);
        }
    }

    #[test]
    fn short_tail_group() {
        // Group at the end of the sequence with fewer live lanes.
        let seq = Seq::dna("ATGCATGCAT").unwrap();
        let scoring = Scoring::dna_example();
        let g = align_group::<I16x4>(seq.codes(), &scoring, 8, 2, None);
        assert_eq!(g.lanes, 2);
        for l in 0..2 {
            let want = scalar_row(&seq, &scoring, 8 + l, None);
            assert_eq!(g.rows[l], want);
        }
    }

    #[test]
    fn single_lane_group() {
        let seq = Seq::dna("ATGCATGC").unwrap();
        let scoring = Scoring::dna_example();
        let g = align_group::<I16x4>(seq.codes(), &scoring, 4, 1, None);
        assert_eq!(g.rows[0], scalar_row(&seq, &scoring, 4, None));
    }

    #[test]
    fn cells_accounting() {
        let seq = Seq::dna("ATGCATGCATGC").unwrap(); // m = 12
        let scoring = Scoring::dna_example();
        let g = align_group::<I16x4>(seq.codes(), &scoring, 2, 4, None);
        // Logical: Σ r(m−r) for r = 2..=5.
        let want: u64 = (2..=5).map(|r| r * (12 - r)).sum::<usize>() as u64;
        assert_eq!(g.cells, want);
        // Vector sweep: rmax × width = 5 × 10.
        assert_eq!(g.vector_cells, 50);
    }

    #[test]
    fn saturation_is_detected() {
        // A long perfect repeat with huge match scores overflows i16.
        let seq = Seq::dna(&"A".repeat(80)).unwrap();
        let scoring = Scoring::new(
            repro_align::ExchangeMatrix::match_mismatch(repro_align::Alphabet::Dna, 1000, -1),
            repro_align::GapPenalties::new(2, 1),
        );
        let g = align_group::<I16x4>(seq.codes(), &scoring, 38, 4, None);
        assert!(
            g.saturated,
            "40 000-ish scores must trip the saturation flag"
        );
    }

    #[test]
    fn striped_group_matches_unstriped() {
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGTAACCGGTTAC").unwrap();
        let scoring = Scoring::dna_example();
        let mut t = OverrideTriangle::new(seq.len());
        for &(p, q) in &[(0, 4), (3, 9), (7, 20)] {
            t.set(p, q);
        }
        for tri in [None, Some(&t)] {
            let reference = align_group::<I16x8>(seq.codes(), &scoring, 5, 8, tri);
            for w in [1usize, 3, 7, 16, 100] {
                let striped =
                    crate::group::align_group_striped::<I16x8>(seq.codes(), &scoring, 5, 8, tri, w);
                assert_eq!(
                    striped.rows,
                    reference.rows,
                    "stripe {w}, mask {:?}",
                    tri.is_some()
                );
                assert_eq!(striped.cells, reference.cells);
            }
        }
    }

    #[test]
    fn derived_group_stripes() {
        // 8 × i16 = 16 B per column per array → 512 columns under the
        // 16 KiB two-array budget; 16 lanes halve it; promotion to i32
        // halves it again.
        assert_eq!(DEFAULT_GROUP_STRIPE, group_stripe(8, 2));
        assert_eq!(group_stripe(16, 2), DEFAULT_GROUP_STRIPE / 2);
        assert_eq!(group_stripe(16, 4), DEFAULT_GROUP_STRIPE / 4);
        assert!(group_stripe(16, 4) * 2 * 16 * 4 <= repro_align::STRIPE_L1_BUDGET);
    }

    #[test]
    fn compacted_subset_matches_scalar() {
        // A non-consecutive split set — the compacted-resume packing —
        // matches the per-split scalar oracle exactly.
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGTAACCGGTTAC").unwrap();
        let scoring = Scoring::dna_example();
        let prof = QueryProfile::new_narrow(&scoring, seq.codes()).unwrap();
        let mut t = OverrideTriangle::new(seq.len());
        for &(p, q) in &[(0, 4), (3, 9), (7, 20)] {
            t.set(p, q);
        }
        for tri in [None, Some(&t)] {
            for rs in [
                vec![3usize],
                vec![2, 5],
                vec![1, 4, 9, 17],
                vec![6, 7, 11, 20, 28],
                vec![2, 3, 4, 5], // consecutive through the generic path
            ] {
                for stripe in [5usize, 64] {
                    let (g, caps) = align_group_profile_at::<I16x8>(
                        seq.codes(),
                        &scoring,
                        &prof,
                        &rs,
                        tri,
                        stripe,
                        None,
                        &[],
                    );
                    assert!(caps.is_empty());
                    for (l, &r) in rs.iter().enumerate() {
                        let want = scalar_row(&seq, &scoring, r, tri);
                        assert_eq!(g.rows[l], want, "split {r} in {rs:?} stripe {stripe}");
                    }
                }
            }
        }
    }

    #[test]
    fn capture_then_resume_is_bit_identical() {
        // Capture inter-row state mid-sweep, then resume a compacted
        // sweep from it: rows must equal the from-scratch sweep at every
        // capture row and stripe width.
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGTAACCGGTTACGTTACA").unwrap();
        let scoring = Scoring::dna_example();
        let prof = QueryProfile::new_narrow(&scoring, seq.codes()).unwrap();
        let mut t = OverrideTriangle::new(seq.len());
        for &(p, q) in &[(1, 6), (4, 12), (9, 25)] {
            t.set(p, q);
        }
        let rs = vec![7usize, 9, 14, 21];
        for tri in [None, Some(&t)] {
            let capture_rows: Vec<usize> = (1..*rs.last().unwrap()).collect();
            let (scratch, caps) = align_group_profile_at::<I16x8>(
                seq.codes(),
                &scoring,
                &prof,
                &rs,
                tri,
                9,
                None,
                &capture_rows,
            );
            assert_eq!(caps.len(), capture_rows.len());
            for cap in &caps {
                // Only lanes whose split exceeds the capture row can be
                // resumed from it.
                let live: Vec<usize> = rs
                    .iter()
                    .copied()
                    .filter(|&r| r > cap.row)
                    .collect();
                let lanes: Vec<LaneResume<'_>> = cap
                    .lanes
                    .iter()
                    .filter_map(|s| s.as_ref())
                    .map(|(m, y)| LaneResume { m, maxy: y })
                    .collect();
                assert_eq!(lanes.len(), live.len());
                let resume = GroupResume {
                    row: cap.row,
                    lanes,
                };
                for stripe in [4usize, 64] {
                    let (resumed, _) = align_group_profile_at::<I16x8>(
                        seq.codes(),
                        &scoring,
                        &prof,
                        &live,
                        tri,
                        stripe,
                        Some(&resume),
                        &[],
                    );
                    for (l, &r) in live.iter().enumerate() {
                        let fl = rs.iter().position(|&x| x == r).unwrap();
                        assert_eq!(
                            resumed.rows[l], scratch.rows[fl],
                            "split {r} resumed at {} stripe {stripe} mask {}",
                            cap.row,
                            tri.is_some()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wide_capture_restores_into_narrow_and_back() {
        // Checkpoints are Score-typed; restoring them into the wide
        // kernel is exact, and the saturating narrow restore is
        // behaviourally identical when every value fits i16.
        let seq = Seq::protein("MGEKALVPYRLQHCERSTMGEKALVPYRWFNDAGHTKLMNPQ").unwrap();
        let scoring = Scoring::protein_default();
        let p16 = QueryProfile::new_narrow(&scoring, seq.codes()).unwrap();
        let p32 = QueryProfile::new_wide(&scoring, seq.codes());
        let rs = vec![9usize, 13, 22];
        let (scratch, caps) = align_group_profile_at::<I32x8>(
            seq.codes(),
            &scoring,
            &p32,
            &rs,
            None,
            16,
            None,
            &[5, 8],
        );
        for cap in &caps {
            let lanes: Vec<LaneResume<'_>> = cap
                .lanes
                .iter()
                .map(|s| {
                    let (m, y) = s.as_ref().unwrap();
                    LaneResume { m, maxy: y }
                })
                .collect();
            let resume = GroupResume {
                row: cap.row,
                lanes,
            };
            let (wide, _) = align_group_profile_at::<I32x8>(
                seq.codes(),
                &scoring,
                &p32,
                &rs,
                None,
                16,
                Some(&resume),
                &[],
            );
            assert_eq!(wide.rows, scratch.rows, "wide resume at {}", cap.row);
            let (narrow, _) = align_group_profile_at::<I16x8>(
                seq.codes(),
                &scoring,
                &p16,
                &rs,
                None,
                16,
                Some(&resume),
                &[],
            );
            assert!(!narrow.saturated);
            assert_eq!(narrow.rows, scratch.rows, "narrow resume at {}", cap.row);
        }
    }

    #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
    #[test]
    fn sse2_kernel_matches_portable() {
        use crate::lanes::sse2::I16x8Sse2;
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGTAACCGGTT").unwrap();
        let scoring = Scoring::dna_example();
        let a = align_group::<I16x8>(seq.codes(), &scoring, 3, 8, None);
        let b = align_group::<I16x8Sse2>(seq.codes(), &scoring, 3, 8, None);
        assert_eq!(a.rows, b.rows);
    }

    #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
    #[test]
    fn avx2_kernel_matches_portable() {
        use crate::lanes::avx2::I16x16Avx2;
        if !crate::test_support::require_avx2("avx2_kernel_matches_portable") {
            return;
        }
        let seq = Seq::protein("MGEKALVPYRLQHCERSTMGEKALVPYRWFNDAGHTKLMNPQ").unwrap();
        let scoring = Scoring::protein_default();
        let prof = QueryProfile::new_narrow(&scoring, seq.codes()).unwrap();
        let a = align_group::<I16x16>(seq.codes(), &scoring, 3, 16, None);
        let b = align_group::<I16x16Avx2>(seq.codes(), &scoring, 3, 16, None);
        assert_eq!(a.rows, b.rows);
        let c = align_group_profile::<I16x16Avx2>(seq.codes(), &scoring, &prof, 3, 16, None, 16);
        assert_eq!(a.rows, c.rows);
    }
}
