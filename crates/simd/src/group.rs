//! The interleaved multi-matrix kernel (paper Figures 6 and 7).
//!
//! A *group* is a run of consecutive splits `r0, r0+1, …, r0+lanes−1`.
//! Lane `l` computes the matrix of split `r_l = r0 + l`. The sweep runs
//! over sequence positions: row `p` (prefix residue) and column `q`
//! (suffix residue), `q ∈ [r0, m)`. At `(p, q)` every lane aligns the
//! same residue pair `(S[p], S[q])`, so the exchange value is looked up
//! once and splatted — the whole point of grouping *neighbouring*
//! matrices.
//!
//! Border corrections:
//! * **left**: lane `l` has no column `q < r_l`; those cells are forced
//!   to 0, which doubles as the virtual zero column for the lane's first
//!   real column (only the first `lanes−1` columns need this);
//! * **bottom**: lane `l`'s matrix ends at row `r_l − 1`; its bottom row
//!   is captured when that row completes, and deeper rows of the lane
//!   are dead weight (the paper's speculation cost).
//! * **override**: cell `(p, q)` represents sequence pair `(p, q)` in
//!   *every* lane, so the triangle mask is lane-uniform — one scalar bit
//!   test zeroes all lanes.

use crate::lanes::SimdVec;
use repro_align::{Score, Scoring};
use repro_core::OverrideTriangle;

/// Per-lane results of one group alignment.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// First split in the group.
    pub r0: usize,
    /// Number of live lanes (the final group of a sequence may be short).
    pub lanes: usize,
    /// Per-lane bottom rows, widened to the scalar score type; entry `l`
    /// is the bottom row of split `r0 + l` (length `m − r0 − l`).
    pub rows: Vec<Vec<Score>>,
    /// Logical cells (sum over lanes of each split's own matrix size) —
    /// comparable with the sequential engine's counters.
    pub cells: u64,
    /// Vector-sweep cells (`rows × width`), the actual SIMD work incl.
    /// dead lanes; `cells / (vector_cells × LANES)` is lane utilisation.
    pub vector_cells: u64,
    /// `true` iff any lane saturated at `i16::MAX`; the caller must fall
    /// back to a scalar recomputation (scores would be clamped).
    pub saturated: bool,
}

/// Default stripe width for [`align_group_striped`]: the stripe's slice
/// of the interleaved previous-row and `MaxY` arrays (16 B per column
/// each for 8 lanes) then occupies ≈12 KiB — "a third of the
/// first-level cache" per §4.1, leaving room for the exchange row and
/// miscellany.
pub const DEFAULT_GROUP_STRIPE: usize = 384;

/// Align the group of `lanes` consecutive splits starting at `r0`
/// (`1 ≤ r0`, `r0 + lanes − 1 ≤ m − 1`) in one interleaved sweep.
/// `triangle = None` means the unmasked first pass.
pub fn align_group<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
) -> GroupResult {
    align_group_striped::<V>(seq, scoring, r0, lanes, triangle, usize::MAX)
}

/// [`align_group`] computed in vertical stripes of `stripe` columns —
/// the cache-aware traversal of paper §4.1 ("we compute a section of
/// the row that fits in a third of the first-level cache, after which
/// we compute the section of the row below it"). Bit-identical results;
/// only the traversal order and the cache behaviour change.
pub fn align_group_striped<V: SimdVec>(
    seq: &[u8],
    scoring: &Scoring,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
) -> GroupResult {
    let m = seq.len();
    assert!(lanes >= 1 && lanes <= V::LANES, "bad lane count");
    assert!(r0 >= 1 && r0 + lanes - 1 <= m.saturating_sub(1), "group out of range");
    let rmax = r0 + lanes - 1; // largest split ⇒ deepest row rmax−1
    let width = m - r0; // columns q ∈ [r0, m)

    let gap_open: i16 = scoring
        .gaps
        .open
        .try_into()
        .expect("gap-open penalty must fit i16 for the SIMD kernel");
    let gap_ext: i16 = scoring
        .gaps
        .extend
        .try_into()
        .expect("gap-extend penalty must fit i16 for the SIMD kernel");

    let neg = V::splat(i16::MIN);
    let zero = V::splat(0);
    let vopen = V::splat(gap_open);
    let vext = V::splat(gap_ext);

    // One-time narrowing of the exchange table to i16 keeps the hot loop
    // free of checked conversions.
    let k = scoring.exchange.alphabet().len();
    let exch16: Vec<i16> = (0..k * k)
        .map(|i| {
            scoring
                .exchange
                .score((i / k) as u8, (i % k) as u8)
                .try_into()
                .expect("exchange scores must fit i16 for the SIMD kernel")
        })
        .collect();

    // Interleaved previous-row and MaxY arrays (Figure 7): element qi
    // packs the `lanes` matrices' entries for column q = r0 + qi.
    let mut mrow = vec![zero; width];
    let mut maxy = vec![neg; width];

    let mut rows: Vec<Vec<Score>> = (0..lanes).map(|l| vec![0; m - (r0 + l)]).collect();
    // Saturation is detected by a running max (v is always ≥ 0), checked
    // once at the end instead of per cell.
    let mut sat_acc = zero;

    let triangle = triangle.filter(|t| !t.is_empty());
    assert!(stripe > 0, "stripe width must be positive");

    // Per-row carries across stripe boundaries (cf. the scalar striped
    // kernel): the running horizontal-gap maximum and the previous
    // stripe's last-column value (the next stripe's diagonal input).
    let mut maxx_carry = vec![neg; rmax];
    let mut edge = vec![zero; rmax];

    let mut x0 = 0;
    while x0 < width {
        let x1 = x0.saturating_add(stripe).min(width);
        // Row p consumes row p−1's *old* edge value; rows run top to
        // bottom, so carry it across one iteration.
        let mut above_old_edge = zero;
        for p in 0..rmax {
            let my_old_edge = edge[p];
            let exch_row = &exch16[seq[p] as usize * k..(seq[p] as usize + 1) * k];
            let mut maxx = if x0 == 0 { neg } else { maxx_carry[p] };
            let mut diag = if x0 == 0 || p == 0 { zero } else { above_old_edge };
            for qi in x0..x1 {
                let up = mrow[qi];
                let exch = exch_row[seq[r0 + qi] as usize];
                let mut v = diag.max(maxx).max(maxy[qi]).adds(V::splat(exch)).max(zero);
                // Lane-uniform override masking (p < q holds for every
                // cell that belongs to any live lane) and the left-border
                // correction (lane l is active iff q ≥ r0 + l). Both only
                // fire on a sparse subset of cells.
                if let Some(t) = triangle {
                    let q = r0 + qi;
                    if p < q && t.get(p, q) {
                        v = zero;
                    }
                }
                if qi + 1 < lanes {
                    v = v.zero_lanes_from(qi + 1);
                }
                sat_acc = sat_acc.max(v);
                mrow[qi] = v;
                let cand = diag.subs(vopen);
                maxx = cand.max(maxx).subs(vext);
                maxy[qi] = cand.max(maxy[qi]).subs(vext);
                diag = up;
            }
            maxx_carry[p] = maxx;
            edge[p] = mrow[x1 - 1];
            above_old_edge = my_old_edge;
            // Bottom-border capture for this stripe's segment: row p is
            // the bottom row of lane l = p + 1 − r0 (split r_l = p + 1),
            // and segment values are final once computed.
            if p + 1 >= r0 {
                let l = p + 1 - r0;
                if l < lanes {
                    let rl = r0 + l;
                    for qi in x0.max(rl - r0)..x1 {
                        rows[l][r0 + qi - rl] = mrow[qi].get(l) as Score;
                    }
                }
            }
        }
        x0 = x1;
    }
    let saturated = sat_acc.any_saturated();

    let cells: u64 = (0..lanes)
        .map(|l| {
            let r = r0 + l;
            r as u64 * (m - r) as u64
        })
        .sum();

    GroupResult {
        r0,
        lanes,
        rows,
        cells,
        vector_cells: rmax as u64 * width as u64,
        saturated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::{I16x4, I16x8};
    use repro_align::{sw_last_row, NoMask, Seq};
    use repro_core::SplitMask;

    fn scalar_row(seq: &Seq, scoring: &Scoring, r: usize, t: Option<&OverrideTriangle>) -> Vec<Score> {
        let (prefix, suffix) = seq.split(r);
        match t {
            Some(t) => sw_last_row(prefix, suffix, scoring, SplitMask::new(t, r)).row,
            None => sw_last_row(prefix, suffix, scoring, NoMask).row,
        }
    }

    #[test]
    fn group_matches_scalar_per_split_unmasked() {
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGT").unwrap();
        let scoring = Scoring::dna_example();
        for r0 in [1, 3, 7, 15] {
            let lanes = 4.min(seq.len() - 1 - r0 + 1).min(4);
            let g = align_group::<I16x4>(seq.codes(), &scoring, r0, lanes, None);
            for l in 0..lanes {
                let want = scalar_row(&seq, &scoring, r0 + l, None);
                assert_eq!(g.rows[l], want, "split {} in group r0={r0}", r0 + l);
            }
        }
    }

    #[test]
    fn group_matches_scalar_with_mask() {
        let seq = Seq::dna("ATGCATGCATGCATGC").unwrap();
        let scoring = Scoring::dna_example();
        let mut t = OverrideTriangle::new(seq.len());
        for &(p, q) in &[(0, 4), (1, 5), (2, 6), (3, 7), (5, 13), (2, 11)] {
            t.set(p, q);
        }
        for r0 in [1, 5, 9] {
            let g = align_group::<I16x8>(seq.codes(), &scoring, r0, 4, Some(&t));
            for l in 0..4 {
                let want = scalar_row(&seq, &scoring, r0 + l, Some(&t));
                assert_eq!(g.rows[l], want, "masked split {}", r0 + l);
            }
        }
    }

    #[test]
    fn eight_lanes_match_scalar() {
        let seq = Seq::protein("MGEKALVPYRLQHCERSTMGEKALVPYRWFND").unwrap();
        let scoring = Scoring::protein_default();
        let g = align_group::<I16x8>(seq.codes(), &scoring, 5, 8, None);
        assert!(!g.saturated);
        for l in 0..8 {
            let want = scalar_row(&seq, &scoring, 5 + l, None);
            assert_eq!(g.rows[l], want, "split {}", 5 + l);
        }
    }

    #[test]
    fn short_tail_group() {
        // Group at the end of the sequence with fewer live lanes.
        let seq = Seq::dna("ATGCATGCAT").unwrap();
        let scoring = Scoring::dna_example();
        let g = align_group::<I16x4>(seq.codes(), &scoring, 8, 2, None);
        assert_eq!(g.lanes, 2);
        for l in 0..2 {
            let want = scalar_row(&seq, &scoring, 8 + l, None);
            assert_eq!(g.rows[l], want);
        }
    }

    #[test]
    fn single_lane_group() {
        let seq = Seq::dna("ATGCATGC").unwrap();
        let scoring = Scoring::dna_example();
        let g = align_group::<I16x4>(seq.codes(), &scoring, 4, 1, None);
        assert_eq!(g.rows[0], scalar_row(&seq, &scoring, 4, None));
    }

    #[test]
    fn cells_accounting() {
        let seq = Seq::dna("ATGCATGCATGC").unwrap(); // m = 12
        let scoring = Scoring::dna_example();
        let g = align_group::<I16x4>(seq.codes(), &scoring, 2, 4, None);
        // Logical: Σ r(m−r) for r = 2..=5.
        let want: u64 = (2..=5).map(|r| r * (12 - r)).sum::<usize>() as u64;
        assert_eq!(g.cells, want);
        // Vector sweep: rmax × width = 5 × 10.
        assert_eq!(g.vector_cells, 50);
    }

    #[test]
    fn saturation_is_detected() {
        // A long perfect repeat with huge match scores overflows i16.
        let seq = Seq::dna(&"A".repeat(80)).unwrap();
        let scoring = Scoring::new(
            repro_align::ExchangeMatrix::match_mismatch(repro_align::Alphabet::Dna, 1000, -1),
            repro_align::GapPenalties::new(2, 1),
        );
        let g = align_group::<I16x4>(seq.codes(), &scoring, 38, 4, None);
        assert!(g.saturated, "40 000-ish scores must trip the saturation flag");
    }

    #[test]
    fn striped_group_matches_unstriped() {
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGTAACCGGTTAC").unwrap();
        let scoring = Scoring::dna_example();
        let mut t = OverrideTriangle::new(seq.len());
        for &(p, q) in &[(0, 4), (3, 9), (7, 20)] {
            t.set(p, q);
        }
        for tri in [None, Some(&t)] {
            let reference = align_group::<I16x8>(seq.codes(), &scoring, 5, 8, tri);
            for w in [1usize, 3, 7, 16, 100] {
                let striped =
                    crate::group::align_group_striped::<I16x8>(seq.codes(), &scoring, 5, 8, tri, w);
                assert_eq!(striped.rows, reference.rows, "stripe {w}, mask {:?}", tri.is_some());
                assert_eq!(striped.cells, reference.cells);
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_kernel_matches_portable() {
        use crate::lanes::sse2::I16x8Sse2;
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGTAACCGGTT").unwrap();
        let scoring = Scoring::dna_example();
        let a = align_group::<I16x8>(seq.codes(), &scoring, 3, 8, None);
        let b = align_group::<I16x8Sse2>(seq.codes(), &scoring, 3, 8, None);
        assert_eq!(a.rows, b.rows);
    }
}
