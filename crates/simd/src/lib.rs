//! # repro-simd — coarse-grained SIMD alignment (paper §4.1)
//!
//! The paper's counterintuitive SIMD technique: instead of vectorising
//! *within* one alignment matrix (hard, because of the loop-carried
//! `MaxX` dependency), compute **4, 8 or 16 neighbouring split
//! matrices at once**, one per SIMD lane. Neighbouring splits share
//! shape, and — crucially — all lanes align the *same residue pair*
//! `(S[p], S[q])` at each step, so a single substitution score feeds
//! every lane (Figure 6), and matrix entries interleave in memory
//! exactly as in Figure 7.
//!
//! * [`lanes`] — saturating `i16` lane vectors at widths 4/8/16 plus
//!   wide wrapping `i32` vectors (the saturation-promotion element).
//!   Portable array forms at every width; explicit SSE2 (`__m128i`) and
//!   AVX2 (`__m256i`) kernels on x86-64. Lane width 4 models SSE, 8
//!   models SSE2 — the paper's two columns of Table 2 — and 16 extends
//!   the same scheme to AVX2.
//! * [`dispatch`] — runtime CPU probing (once, via
//!   `is_x86_feature_detected!`) and the typed selection logic that
//!   routes a sweep to the widest safe kernel, with graceful errors for
//!   impossible requests (e.g. SSE2 at 16 lanes).
//! * [`group`] — the interleaved multi-matrix kernel with the left/bottom
//!   border corrections and lane-uniform override masking; two sweep
//!   bodies, the historical per-cell lookup and the query-profile form
//!   (one contiguous load per cell, profile built once per sequence).
//! * [`engine`] — group-granular top-alignment search: groups of
//!   neighbouring splits are scheduled through the best-first queue, the
//!   highest-scoring member sets the group's priority, and results are
//!   bit-identical to the sequential engine (speculation wastes a little
//!   work, never changes answers).
//!
//! Scores are the paper's 16-bit "shorts": saturating arithmetic, with a
//! saturation flag. A saturated group is recomputed with wide `i32`
//! lanes — still vectorised, bit-identical to the scalar reference —
//! instead of the historical whole-group scalar fallback.

#![warn(missing_docs)]

pub mod dispatch;
pub mod engine;
pub mod group;
pub mod lanes;
pub mod resume;
#[cfg(test)]
pub(crate) mod test_support;

pub use dispatch::{auto_path, select, DispatchError, DispatchPath, SimdSel};
pub use engine::{
    find_top_alignments_simd, find_top_alignments_simd_auto, find_top_alignments_simd_checkpointed,
    find_top_alignments_simd_recorded, find_top_alignments_simd_seeded,
    find_top_alignments_simd_sel, GroupSweeper, SimdFinderResult, SimdStats, SweepOutcome,
};
pub use group::{
    align_group, align_group_profile, align_group_striped, group_stripe, GroupCapture,
    GroupResult, GroupResume, LaneResume, DEFAULT_GROUP_STRIPE,
};
pub use lanes::{I16x16, I16x4, I16x8, SimdVec};
pub use resume::{GroupIncremental, LaneMemo, RealignPlan, SIMD_MAX_CKPTS};

/// Lane-width selection: the paper's Table 2 columns (4 = SSE, 8 = SSE2)
/// extended with the AVX2 width (16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneWidth {
    /// 4 × i16 — the SSE (Pentium III) configuration.
    X4,
    /// 8 × i16 — the SSE2 (Pentium 4) configuration.
    X8,
    /// 16 × i16 — the AVX2 configuration.
    X16,
}

impl LaneWidth {
    /// Number of lanes.
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::X4 => 4,
            LaneWidth::X8 => 8,
            LaneWidth::X16 => 16,
        }
    }

    /// Parse a lane count back into a width.
    pub fn from_lanes(n: usize) -> Option<Self> {
        match n {
            4 => Some(LaneWidth::X4),
            8 => Some(LaneWidth::X8),
            16 => Some(LaneWidth::X16),
            _ => None,
        }
    }
}

impl std::fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.lanes())
    }
}
