//! # repro-simd — coarse-grained SIMD alignment (paper §4.1)
//!
//! The paper's counterintuitive SIMD technique: instead of vectorising
//! *within* one alignment matrix (hard, because of the loop-carried
//! `MaxX` dependency), compute **four or eight neighbouring split
//! matrices at once**, one per SIMD lane. Neighbouring splits share
//! shape, and — crucially — all lanes align the *same residue pair*
//! `(S[p], S[q])` at each step, so a single exchange-matrix lookup feeds
//! every lane (Figure 6), and matrix entries interleave in memory
//! exactly as in Figure 7.
//!
//! * [`lanes`] — saturating `i16 × 4` / `i16 × 8` lane vectors. The
//!   portable implementations are written so LLVM compiles them to
//!   `PADDSW`/`PSUBSW`/`PMAXSW`; on x86-64 an explicit SSE2 path uses the
//!   very instructions the paper's Pentium III/4 did. Lane width 4
//!   models SSE (4 shorts), width 8 models SSE2 (8 shorts).
//! * [`group`] — the interleaved multi-matrix kernel with the left/bottom
//!   border corrections and lane-uniform override masking.
//! * [`engine`] — group-granular top-alignment search: groups of
//!   neighbouring splits are scheduled through the best-first queue, the
//!   highest-scoring member sets the group's priority, and results are
//!   bit-identical to the sequential engine (speculation wastes a little
//!   work, never changes answers).
//!
//! Scores are the paper's 16-bit "shorts": saturating arithmetic, with a
//! saturation flag that triggers a scalar recomputation of the affected
//! group, so results stay exact even beyond ±32 767.

#![warn(missing_docs)]

pub mod engine;
pub mod group;
pub mod lanes;

pub use engine::{find_top_alignments_simd, SimdFinderResult, SimdStats};
pub use group::{align_group, align_group_striped, GroupResult, DEFAULT_GROUP_STRIPE};
pub use lanes::{I16x4, I16x8, SimdVec};

/// Lane-width selection mirroring the paper's Table 2 columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneWidth {
    /// 4 × i16 — the SSE (Pentium III) configuration.
    X4,
    /// 8 × i16 — the SSE2 (Pentium 4) configuration.
    X8,
}

impl LaneWidth {
    /// Number of lanes.
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::X4 => 4,
            LaneWidth::X8 => 8,
        }
    }
}
