//! Group-granular top-alignment search (paper §4.1's static scheme).
//!
//! The task queue holds *groups* of neighbouring splits; a group's
//! priority is its best member's (upper-bound) score. Popping a stale
//! group realigns **all** members in one interleaved SIMD sweep — the
//! speculation the paper describes: "if a matrix is scheduled for
//! computation, it is likely that the neighbouring matrices will be
//! scheduled shortly thereafter". A fresh group at the head of the queue
//! yields its best member as the next top alignment.
//!
//! Sweeps go through a [`GroupSweeper`]: the query profiles (narrow
//! `i16` and wide `i32`) are built once per sequence and shared by all
//! sweeps, the kernel is the runtime-dispatched selection of
//! [`crate::dispatch`], and a sweep whose `i16` lanes saturate is
//! recomputed with wide `i32` lanes — still vectorised, bit-identical
//! to the scalar reference — instead of the historical whole-group
//! scalar fallback. Scorings whose values don't fit `i16` at all skip
//! the narrow sweep entirely (they used to panic).
//!
//! Results are identical to the sequential engine: acceptance order is
//! still driven by exact scores under the same deterministic tie-breaks,
//! only the *work grouping* differs. The extra lane-alignments performed
//! are reported in [`SimdStats`] (the paper measured < 0.70 % extra).

use crate::dispatch::{
    select, sweep_group_profile_i16, sweep_group_profile_i16_at, sweep_group_wide,
    sweep_group_wide_at, SimdSel,
};
use crate::group::{GroupCapture, GroupResult, GroupResume};
use crate::resume::{GroupIncremental, LaneMemo};
use crate::LaneWidth;
use repro_align::{QueryProfile, Score, Scoring, Seq};
use repro_core::bottom::best_valid_entry_counted;
use repro_core::{
    accept_task, BottomRowStore, DirtyLog, OverrideTriangle, SeedConfig, SplitBounds, Stats,
    TopAlignment, TopAlignments,
};
use repro_obs::{Counter, Metric, NoopRecorder, Phase, Progress, Recorder};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// Per-group sweep memo: one [`LaneMemo`] per lane. Lane-granular — a
/// lane untouched by accepts since *its* stamp replays its exact score
/// even when sibling lanes must re-sweep.
type GroupMemo = Option<Vec<LaneMemo>>;

/// SIMD-engine-specific counters, on top of the common [`Stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimdStats {
    /// Group sweeps performed (narrow and wide combined).
    pub group_sweeps: u64,
    /// Vector cells computed (including dead lanes, and including the
    /// wide re-sweep of promoted groups).
    pub vector_cells: u64,
    /// Groups whose narrow (`i16`) sweep saturated. Kept under its
    /// historical name; the remedy is now the wide-lane promotion sweep,
    /// not a scalar recomputation.
    pub saturation_fallbacks: u64,
    /// Wide (`i32`) promotion sweeps performed — saturated groups plus
    /// every sweep of a scoring too large for `i16` altogether.
    pub promoted_sweeps: u64,
}

/// Result of the SIMD engine: the common result plus SIMD counters.
#[derive(Debug, Clone)]
pub struct SimdFinderResult {
    /// Alignments, stats and triangle, exactly as the sequential engine
    /// reports them.
    pub result: TopAlignments,
    /// SIMD-specific counters.
    pub simd: SimdStats,
}

/// One group sweep's outcome: the (exact) group result plus how it was
/// obtained.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Exact per-lane bottom rows — post-promotion if the narrow sweep
    /// saturated, so always safe to consume.
    pub group: GroupResult,
    /// The narrow `i16` sweep saturated and was redone in `i32`.
    pub saturated_narrow: bool,
    /// A wide sweep produced the result (saturation, or a scoring whose
    /// values don't fit `i16`).
    pub promoted: bool,
    /// Total vector cells across the sweeps performed (narrow + wide).
    pub vector_cells: u64,
}

/// Shared, reusable sweep state for one `(sequence, scoring, kernel)`
/// triple: both query profiles plus the dispatch selection.
///
/// Built once, used by every group sweep of a run — sequential or
/// multi-threaded ([`GroupSweeper`] is `Sync`; the SIMD×SMP engine in
/// `repro-parallel` shares one across workers).
pub struct GroupSweeper<'a> {
    seq: &'a Seq,
    scoring: &'a Scoring,
    sel: SimdSel,
    /// Narrow profile; `None` when some exchange score exceeds `i16`
    /// range, in which case every sweep goes straight to the wide path.
    prof16: Option<QueryProfile<i16>>,
    /// Wide profile, built lazily on first promotion.
    prof32: OnceLock<QueryProfile<i32>>,
}

impl<'a> GroupSweeper<'a> {
    /// Build the sweeper (and the narrow profile) for one run.
    pub fn new(seq: &'a Seq, scoring: &'a Scoring, sel: SimdSel) -> Self {
        GroupSweeper {
            seq,
            scoring,
            sel,
            prof16: QueryProfile::new_narrow(scoring, seq.codes()),
            prof32: OnceLock::new(),
        }
    }

    /// The kernel selection this sweeper routes to.
    pub fn sel(&self) -> SimdSel {
        self.sel
    }

    /// Sweep the group of `lanes` splits starting at `r0`, exactly.
    ///
    /// The chain is: narrow `i16` profile sweep; on saturation (or an
    /// un-narrowable scoring) the wide `i32` profile sweep, which is the
    /// scalar recurrence verbatim and cannot clamp.
    pub fn sweep(
        &self,
        r0: usize,
        lanes: usize,
        triangle: Option<&OverrideTriangle>,
    ) -> SweepOutcome {
        let mut vector_cells = 0;
        let mut saturated_narrow = false;
        if let Some(p16) = &self.prof16 {
            let g = sweep_group_profile_i16(
                self.sel,
                self.seq.codes(),
                self.scoring,
                p16,
                r0,
                lanes,
                triangle,
            );
            vector_cells += g.vector_cells;
            if !g.saturated {
                return SweepOutcome {
                    group: g,
                    saturated_narrow: false,
                    promoted: false,
                    vector_cells,
                };
            }
            saturated_narrow = true;
        }
        let p32 = self
            .prof32
            .get_or_init(|| QueryProfile::new_wide(self.scoring, self.seq.codes()));
        let g = sweep_group_wide(
            self.sel.width,
            self.seq.codes(),
            self.scoring,
            p32,
            r0,
            lanes,
            triangle,
        );
        // The wide element wraps exactly like the scalar kernel; a score
        // actually reaching i32::MAX would be wrong scalarly too.
        debug_assert!(!g.saturated);
        vector_cells += g.vector_cells;
        SweepOutcome {
            group: g,
            saturated_narrow,
            promoted: true,
            vector_cells,
        }
    }

    /// Sweep an arbitrary ascending split pack `rs`, optionally resuming
    /// mid-matrix and capturing inter-row state — the compacted-resume
    /// form of [`GroupSweeper::sweep`], same narrow → wide promotion
    /// chain, bit-identical results.
    ///
    /// Resume states above `i16` range force the wide path directly:
    /// values *below* the narrow range pin to `i16::MIN` on restore,
    /// which is behaviourally identical (anything under `−open` loses
    /// every comparison), but values above would clamp downward and
    /// corrupt — and a checkpointed running `maxy` can exceed `i16::MAX`
    /// even when every `m` fits, so both arrays are checked. Captures
    /// from a saturated narrow sweep are discarded (saturated sentinels
    /// must not be checkpointed); the wide re-sweep recaptures exactly.
    pub fn sweep_at(
        &self,
        rs: &[usize],
        triangle: Option<&OverrideTriangle>,
        resume: Option<&GroupResume<'_>>,
        capture_rows: &[usize],
    ) -> (SweepOutcome, Vec<GroupCapture>) {
        let mut vector_cells = 0;
        let mut saturated_narrow = false;
        let fits_narrow = resume.is_none_or(|res| {
            res.lanes.iter().all(|l| {
                l.m.iter()
                    .chain(l.maxy.iter())
                    .all(|&v| v < i16::MAX as Score)
            })
        });
        if fits_narrow {
            if let Some(p16) = &self.prof16 {
                let (g, caps) = sweep_group_profile_i16_at(
                    self.sel,
                    self.seq.codes(),
                    self.scoring,
                    p16,
                    rs,
                    triangle,
                    resume,
                    capture_rows,
                );
                vector_cells += g.vector_cells;
                if !g.saturated {
                    return (
                        SweepOutcome {
                            group: g,
                            saturated_narrow: false,
                            promoted: false,
                            vector_cells,
                        },
                        caps,
                    );
                }
                saturated_narrow = true;
            }
        }
        let p32 = self
            .prof32
            .get_or_init(|| QueryProfile::new_wide(self.scoring, self.seq.codes()));
        let (g, caps) = sweep_group_wide_at(
            self.sel.width,
            self.seq.codes(),
            self.scoring,
            p32,
            rs,
            triangle,
            resume,
            capture_rows,
        );
        debug_assert!(!g.saturated);
        vector_cells += g.vector_cells;
        (
            SweepOutcome {
                group: g,
                saturated_narrow,
                promoted: true,
                vector_cells,
            },
            caps,
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GroupTask {
    score: Score,
    /// `Reverse` so equal scores pop the lowest group first, matching the
    /// sequential engine's smallest-split tie-break.
    gi: Reverse<usize>,
    aligned_with: usize,
}

impl Ord for GroupTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| self.gi.cmp(&other.gi))
    }
}

impl PartialOrd for GroupTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Find `count` top alignments using lane width `width` on the fastest
/// available dispatch path; produces the same alignments as
/// [`repro_core::find_top_alignments`].
///
/// ```
/// use repro_simd::{find_top_alignments_simd, LaneWidth};
/// use repro_align::{Scoring, Seq};
///
/// let seq = Seq::dna("ATGCATGCATGC").unwrap();
/// let run = find_top_alignments_simd(&seq, &Scoring::dna_example(), 3, LaneWidth::X8);
/// assert_eq!(run.result.alignments.len(), 3);
/// assert!(run.simd.group_sweeps > 0);
/// ```
pub fn find_top_alignments_simd(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    width: LaneWidth,
) -> SimdFinderResult {
    let sel = select(Some(width), None)
        .expect("width-only selection always resolves (portable covers every width)");
    run(seq, scoring, count, sel, None, None, &mut NoopRecorder)
}

/// [`find_top_alignments_simd`] with full auto-dispatch: the widest
/// kernel the running CPU supports.
pub fn find_top_alignments_simd_auto(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
) -> SimdFinderResult {
    let sel = select(None, None).expect("full auto selection always resolves");
    run(seq, scoring, count, sel, None, None, &mut NoopRecorder)
}

/// [`find_top_alignments_simd`] with an explicit, pre-resolved kernel
/// selection (obtain one from [`crate::dispatch::select`]).
pub fn find_top_alignments_simd_sel(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    sel: SimdSel,
) -> SimdFinderResult {
    run(seq, scoring, count, sel, None, None, &mut NoopRecorder)
}

/// [`find_top_alignments_simd_sel`] with a recorder: phase spans around
/// the group sweeps and tracebacks, lane-occupancy counters
/// ([`Counter::LanesActive`] / [`Counter::LanesPadded`]), sweep counts,
/// and stale/fresh pop + shadow accounting in the common `Stats`. The
/// recorder is monomorphized; the plain entry points above compile this
/// same function against [`NoopRecorder`].
pub fn find_top_alignments_simd_recorded<R: Recorder>(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    sel: SimdSel,
    rec: &mut R,
) -> SimdFinderResult {
    run(seq, scoring, count, sel, None, None, rec)
}

/// [`find_top_alignments_simd_recorded`] with the incremental
/// realignment layer: when `checkpoint_budget` is `Some`, a stale
/// group's lanes are classified individually — clean lanes replay their
/// memoised exact scores, the rest re-pack into a compacted group swept
/// from the deepest checkpoint row shared by the pack (see
/// [`crate::resume`]). Results are bit-identical either way.
pub fn find_top_alignments_simd_checkpointed<R: Recorder>(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    sel: SimdSel,
    checkpoint_budget: Option<usize>,
    rec: &mut R,
) -> SimdFinderResult {
    run(seq, scoring, count, sel, checkpoint_budget, None, rec)
}

/// [`find_top_alignments_simd_checkpointed`] with seeded split pruning:
/// every group enters the queue at the maximum of its members' seed
/// bounds, and a whole lane-pack whose bound stays below every
/// acceptance is never swept at all. A never-swept group popped with a
/// stale bound is requeued at its tightened bound without sweeping (a
/// `pruned_pops` bucket entry, group-granular). Alignments are
/// bit-identical with pruning on or off.
pub fn find_top_alignments_simd_seeded<R: Recorder>(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    sel: SimdSel,
    checkpoint_budget: Option<usize>,
    seed: Option<SeedConfig>,
    rec: &mut R,
) -> SimdFinderResult {
    run(seq, scoring, count, sel, checkpoint_budget, seed, rec)
}

#[allow(clippy::needless_range_loop)] // index loops mirror the paper's pseudo code
fn run<R: Recorder>(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    sel: SimdSel,
    checkpoint_budget: Option<usize>,
    seed: Option<SeedConfig>,
    rec: &mut R,
) -> SimdFinderResult {
    let m = seq.len();
    let splits = m.saturating_sub(1); // splits are 1..=splits
    let lanes = sel.width.lanes();
    let ngroups = splits.div_ceil(lanes.max(1));

    let group_r0 = |gi: usize| 1 + gi * lanes;
    let group_lanes = |gi: usize| lanes.min(splits - gi * lanes);

    let sweeper = GroupSweeper::new(seq, scoring, sel);

    let mut triangle = OverrideTriangle::new(m);
    let mut bottomstore = BottomRowStore::new(m);
    let mut stats = Stats::new();
    let mut simd = SimdStats::default();
    let mut alignments: Vec<TopAlignment> = Vec::new();

    // Seeded pruning: a group's admissible bound is the max of its
    // members' split bounds (a lane-pack is swept as a unit, so the
    // group enters the queue at the loosest member bound).
    let mut bounds = seed.map(|sc| SplitBounds::build(seq.codes(), scoring, sc));
    if let Some(b) = &bounds {
        stats.seed_index_build_ns = b.build_ns();
    }
    let group_bound = |b: &SplitBounds, gi: usize| -> Score {
        (0..group_lanes(gi))
            .map(|l| b.bound(group_r0(gi) + l))
            .max()
            .unwrap_or(0)
    };
    // Splits (not groups) that have completed a first alignment pass.
    let mut first_passes = 0usize;

    // Last exact member scores per group (valid, shadow-filtered).
    let mut member_scores: Vec<Vec<Score>> = (0..ngroups)
        .map(|gi| vec![Score::MAX; group_lanes(gi)])
        .collect();

    // Incremental layer, lane-granular: clean lanes replay their memo,
    // dirty lanes re-pack into a compacted group resumed from the
    // deepest checkpoint row shared by the whole pack. Budget 0 keeps
    // the accounting but disables every shortcut.
    let incremental = checkpoint_budget.is_some();
    let mut incr = GroupIncremental::new(checkpoint_budget.unwrap_or(0));
    let mut dirty = DirtyLog::new();
    // Per group: one LaneMemo per lane (stamp + exact score/shadows).
    let mut group_memo: Vec<GroupMemo> = vec![None; ngroups];

    let mut queue: BinaryHeap<GroupTask> = (0..ngroups)
        .map(|gi| GroupTask {
            score: match &bounds {
                Some(b) => group_bound(b, gi),
                None => Score::MAX,
            },
            gi: Reverse(gi),
            aligned_with: usize::MAX,
        })
        .collect();

    while alignments.len() < count {
        let Some(task) = queue.pop() else { break };
        if task.score <= 0 {
            break;
        }
        let pop_t0 = R::ENABLED.then(std::time::Instant::now);
        if R::ENABLED {
            rec.progress(&Progress {
                splits_done: first_passes as u64,
                splits_total: splits as u64,
                splits_pruned: (splits - first_passes) as u64,
                realignments_avoided: stats.pruned_pops + stats.checkpoint_hits,
                tops_found: alignments.len() as u64,
                tops_requested: count as u64,
            });
        }
        let Reverse(gi) = task.gi;
        let tops_found = alignments.len();

        // Bound-refresh fast path: a never-swept group whose bound has
        // tightened since it was queued is requeued at the new bound
        // without sweeping — a whole lane-pack resolved with zero DP
        // work. Only never-swept groups qualify: exact scores must not
        // be replaced by bounds.
        if task.aligned_with == usize::MAX {
            if let Some(b) = &bounds {
                let gb = group_bound(b, gi);
                if gb < task.score {
                    stats.pruned_pops += 1;
                    rec.observe(Metric::PruneSlack, (task.score - gb) as u64);
                    if let Some(t0) = pop_t0 {
                        rec.observe(Metric::TaskRoundTripNs, t0.elapsed().as_nanos() as u64);
                    }
                    queue.push(GroupTask {
                        score: gb,
                        gi: Reverse(gi),
                        aligned_with: usize::MAX,
                    });
                    continue;
                }
            }
        }

        if task.aligned_with == tops_found {
            stats.fresh_pops += 1;
            rec.phase_start(Phase::Traceback);
            // Fresh group at the head: its best member is the next top
            // alignment (smallest split on ties).
            let scores = &member_scores[gi];
            let (best_l, &best_score) = scores
                .iter()
                .enumerate()
                .max_by(|(la, sa), (lb, sb)| sa.cmp(sb).then(lb.cmp(la)))
                .expect("groups are never empty");
            let r = group_r0(gi) + best_l;
            let index = tops_found;
            let (top, cells) = accept_task(
                seq,
                scoring,
                r,
                best_score,
                &mut triangle,
                &bottomstore,
                index,
            );
            stats.record_traceback(cells);
            if incremental {
                dirty.record_accept(&top.pairs);
            }
            // Tighten the seed bounds under the grown triangle; stale
            // queue entries keep their old (looser) bound and stay
            // admissible, the bound-refresh fast path lowers them on
            // pop. Skipped once every split has first-passed.
            if first_passes < splits {
                if let (Some(b), Some(&(p, _))) = (bounds.as_mut(), top.pairs.first()) {
                    b.recompute(seq.codes(), scoring, &triangle, p);
                }
            }
            alignments.push(top);
            queue.push(GroupTask {
                score: task.score,
                gi: Reverse(gi),
                aligned_with: task.aligned_with,
            });
            rec.phase_end(Phase::Traceback);
            if let Some(t0) = pop_t0 {
                rec.observe(Metric::TaskRoundTripNs, t0.elapsed().as_nanos() as u64);
            }
        } else {
            stats.stale_pops += 1;
            let r0 = group_r0(gi);
            let nl = group_lanes(gi);
            let first_pass = task.aligned_with == usize::MAX;
            let sweep_phase = if first_pass {
                Phase::FirstSweep
            } else {
                Phase::Drain
            };
            // Per-lane classification: lanes untouched since their memo
            // stamp replay exactly; the rest re-pack into a compacted
            // group, resumed from the deepest checkpoint row shared by
            // the whole pack. All lanes clean = the whole-group skip.
            let mut plan = (incremental && !first_pass).then(|| {
                let memo = group_memo[gi]
                    .as_ref()
                    .expect("realigned group must have a memo");
                let stamps: Vec<u64> = memo.iter().map(|lm| lm.stamp).collect();
                incr.plan(&dirty, r0, nl, &stamps)
            });
            let version = dirty.version();
            if plan.as_ref().is_some_and(|p| p.full_skip()) {
                rec.phase_start(sweep_phase);
                let memo = group_memo[gi].as_mut().expect("skip implies a memo");
                stats.checkpoint_hits += 1;
                stats.lanes_skipped += nl as u64;
                rec.add(Counter::LanesSkipped, nl as u64);
                let mut group_best = 0;
                for (l, lm) in memo.iter_mut().enumerate() {
                    lm.stamp = version;
                    stats.shadow_rejections += lm.shadows;
                    stats.record_alignment(0, tops_found);
                    stats.realign_rows_skipped += (r0 + l) as u64;
                    member_scores[gi][l] = lm.score;
                    group_best = group_best.max(lm.score);
                }
                rec.phase_end(sweep_phase);
                if let Some(t0) = pop_t0 {
                    rec.observe(Metric::TaskRoundTripNs, t0.elapsed().as_nanos() as u64);
                }
                queue.push(GroupTask {
                    score: group_best,
                    gi: Reverse(gi),
                    aligned_with: tops_found,
                });
                continue;
            }
            rec.phase_start(sweep_phase);
            let mut count_sweep = |outcome: &SweepOutcome, active: usize| {
                simd.group_sweeps += 1;
                simd.vector_cells += outcome.vector_cells;
                rec.add(Counter::GroupSweeps, 1);
                rec.add(Counter::LanesActive, active as u64);
                rec.add(Counter::LanesPadded, (lanes - active) as u64);
                if outcome.saturated_narrow {
                    simd.saturation_fallbacks += 1;
                    rec.add(Counter::NarrowSaturations, 1);
                }
                if outcome.promoted {
                    simd.promoted_sweeps += 1;
                    rec.add(Counter::PromotedSweeps, 1);
                }
            };
            let mut group_best = 0;
            if first_pass {
                let rs_full: Vec<usize> = (0..nl).map(|l| r0 + l).collect();
                let capture_rows = if incremental {
                    incr.first_pass_captures(&dirty, r0, nl)
                } else {
                    Vec::new()
                };
                // Checkpoints must reflect the *masked* recurrence, so
                // capture from the clean sweep only when no masked
                // resweep follows (empty triangle: they coincide).
                let clean_cap_rows: &[usize] = if triangle.is_empty() {
                    &capture_rows
                } else {
                    &[]
                };
                let sweep_t0 = R::ENABLED.then(std::time::Instant::now);
                let (outcome, mut caps) = sweeper.sweep_at(&rs_full, None, None, clean_cap_rows);
                let clean_ns = sweep_t0.map(|t0| t0.elapsed().as_nanos() as u64);
                count_sweep(&outcome, nl);
                // Late first pass: under seeded pruning a group's first
                // sweep can happen after accepts have grown the
                // triangle. The clean (unmasked) sweep above feeds the
                // shadow store; this masked resweep yields the exact
                // current scores.
                let mut masked_ns = None;
                let masked = if !triangle.is_empty() {
                    let masked_t0 = R::ENABLED.then(std::time::Instant::now);
                    let (mo, mcaps) =
                        sweeper.sweep_at(&rs_full, Some(&triangle), None, &capture_rows);
                    masked_ns = masked_t0.map(|t0| t0.elapsed().as_nanos() as u64);
                    count_sweep(&mo, nl);
                    caps = mcaps;
                    Some(mo.group)
                } else {
                    None
                };
                if let Some(ns) = clean_ns {
                    rec.observe(Metric::SweepNs, ns);
                }
                if let Some(ns) = masked_ns {
                    rec.observe(Metric::SweepNs, ns);
                }
                let g = outcome.group;
                let total_cells = g.cells + masked.as_ref().map_or(0, |mg| mg.cells);
                let per_lane_cells = total_cells / nl as u64;
                let mut lane_memo: Vec<LaneMemo> = Vec::new();
                let mut lane_scores: Vec<Score> = Vec::with_capacity(nl);
                for l in 0..nl {
                    let r = r0 + l;
                    bottomstore.store(r, &g.rows[l]);
                    let mut lane_shadows = 0;
                    let score = if let Some(mg) = &masked {
                        let (s, _, shadows) = best_valid_entry_counted(&mg.rows[l], &g.rows[l]);
                        stats.shadow_rejections += shadows;
                        lane_shadows = shadows;
                        s
                    } else {
                        debug_assert!(triangle.is_empty());
                        g.rows[l].iter().copied().max().unwrap_or(0).max(0)
                    };
                    stats.record_alignment(per_lane_cells, tops_found);
                    if incremental {
                        lane_memo.push(LaneMemo {
                            stamp: version,
                            score,
                            shadows: lane_shadows,
                        });
                    }
                    lane_scores.push(score);
                    member_scores[gi][l] = score;
                    group_best = group_best.max(score);
                }
                if incremental {
                    incr.commit(&rs_full, Vec::new(), caps, version, &lane_scores);
                    group_memo[gi] = Some(lane_memo);
                }
                first_passes += nl;
            } else {
                let mut p = plan.take().unwrap_or_else(|| {
                    // Non-incremental runs realign the whole group from
                    // scratch, exactly as before.
                    crate::resume::RealignPlan {
                        clean: Vec::new(),
                        packed: (0..nl).collect(),
                        rs: (0..nl).map(|l| r0 + l).collect(),
                        resume_row: 0,
                        kept: Vec::new(),
                        capture_rows: Vec::new(),
                    }
                });
                let npack = p.packed.len();
                let start = p.resume_row;
                let sweep_t0 = R::ENABLED.then(std::time::Instant::now);
                let (outcome, caps) = {
                    let resume = p.resume();
                    sweeper.sweep_at(&p.rs, Some(&triangle), resume.as_ref(), &p.capture_rows)
                };
                let sweep_ns = sweep_t0.map(|t0| t0.elapsed().as_nanos() as u64);
                count_sweep(&outcome, npack);
                if let Some(ns) = sweep_ns {
                    rec.observe(Metric::SweepNs, ns);
                }
                let g = outcome.group;
                let per_lane_cells = g.cells / npack as u64;
                let compacted = npack < nl || start > 0;
                if incremental {
                    if p.clean.is_empty() && start == 0 {
                        stats.checkpoint_misses += 1;
                    }
                    stats.lanes_skipped += p.clean.len() as u64;
                    rec.add(Counter::LanesSkipped, p.clean.len() as u64);
                    if compacted {
                        stats.lanes_compacted += npack as u64;
                        rec.add(Counter::LanesCompacted, npack as u64);
                    }
                }
                // Clean lanes: replay their memo verbatim (and bump the
                // stamp — they were just verified clean up to now).
                if !p.clean.is_empty() {
                    let memo = group_memo[gi].as_mut().expect("clean lanes imply a memo");
                    for &l in &p.clean {
                        let lm = &mut memo[l];
                        lm.stamp = version;
                        stats.shadow_rejections += lm.shadows;
                        stats.record_alignment(0, tops_found);
                        stats.realign_rows_skipped += (r0 + l) as u64;
                        member_scores[gi][l] = lm.score;
                        group_best = group_best.max(lm.score);
                    }
                }
                // Packed lanes: score the fresh bottom rows.
                let mut pack_scores: Vec<Score> = Vec::with_capacity(npack);
                for (i, &l) in p.packed.iter().enumerate() {
                    let r = r0 + l;
                    debug_assert_eq!(r, p.rs[i]);
                    let original = bottomstore
                        .get(r)
                        .expect("realigned member must have a stored first-pass row");
                    let (score, _, shadows) = best_valid_entry_counted(&g.rows[i], original);
                    stats.shadow_rejections += shadows;
                    stats.record_alignment(per_lane_cells, tops_found);
                    if incremental {
                        stats.realign_rows_swept += (r - start) as u64;
                        stats.realign_rows_skipped += start as u64;
                        rec.observe(Metric::ResumeRows, (r - start) as u64);
                        if let Some(memo) = group_memo[gi].as_mut() {
                            memo[l] = LaneMemo {
                                stamp: version,
                                score,
                                shadows,
                            };
                        }
                    }
                    pack_scores.push(score);
                    member_scores[gi][l] = score;
                    group_best = group_best.max(score);
                }
                if incremental {
                    incr.commit(
                        &p.rs,
                        std::mem::take(&mut p.kept),
                        caps,
                        version,
                        &pack_scores,
                    );
                }
            }
            rec.phase_end(sweep_phase);
            if let Some(t0) = pop_t0 {
                rec.observe(Metric::TaskRoundTripNs, t0.elapsed().as_nanos() as u64);
            }
            queue.push(GroupTask {
                score: group_best,
                gi: Reverse(gi),
                aligned_with: tops_found,
            });
        }
    }

    if incremental {
        rec.add(Counter::CheckpointHits, stats.checkpoint_hits);
        rec.add(Counter::CheckpointMisses, stats.checkpoint_misses);
        rec.add(Counter::RealignRowsSwept, stats.realign_rows_swept);
        rec.add(Counter::RealignRowsSkipped, stats.realign_rows_skipped);
    }

    if let Some(b) = &bounds {
        stats.splits_pruned = splits.saturating_sub(first_passes) as u64;
        stats.bound_recomputes = b.recomputes();
        rec.add(Counter::SplitsPruned, stats.splits_pruned);
        rec.add(Counter::PrunedPops, stats.pruned_pops);
        rec.add(Counter::BoundRecomputes, stats.bound_recomputes);
        rec.add(Counter::SeedIndexBuildNs, stats.seed_index_build_ns);
    }

    SimdFinderResult {
        result: TopAlignments {
            alignments,
            stats,
            triangle,
        },
        simd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::DispatchPath;
    use repro_core::find_top_alignments;

    const ALL_WIDTHS: [LaneWidth; 3] = [LaneWidth::X4, LaneWidth::X8, LaneWidth::X16];

    #[test]
    fn figure4_example_matches_sequential() {
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let scoring = Scoring::dna_example();
        let seq_result = find_top_alignments(&seq, &scoring, 3);
        for width in ALL_WIDTHS {
            let simd = find_top_alignments_simd(&seq, &scoring, 3, width);
            assert_eq!(
                simd.result.alignments, seq_result.alignments,
                "{width:?} disagrees with the sequential engine"
            );
        }
    }

    #[test]
    fn agrees_on_varied_inputs() {
        let scoring = Scoring::dna_example();
        for text in [
            "ACGTTGCAACGTACGTTGCAGGTT",
            "AAAAAAAAAAAAAAA",
            "ATATATATATATATATATAT",
            "ACGGTACGGTAACGGTTTTTACGGT",
            "ACGT",
        ] {
            let seq = Seq::dna(text).unwrap();
            let want = find_top_alignments(&seq, &scoring, 6);
            for width in ALL_WIDTHS {
                let got = find_top_alignments_simd(&seq, &scoring, 6, width);
                assert_eq!(
                    got.result.alignments, want.alignments,
                    "{width:?} on {text}"
                );
            }
        }
    }

    #[test]
    fn auto_dispatch_matches_sequential() {
        let seq = Seq::dna("ACGGTACGGTAACGGTTTTTACGGTACGT").unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 5);
        let got = find_top_alignments_simd_auto(&seq, &scoring, 5);
        assert_eq!(got.result.alignments, want.alignments);
    }

    #[test]
    fn portable_path_matches_sequential() {
        let seq = Seq::dna("ACGGTACGGTAACGGTTTTTACGGTACGT").unwrap();
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, 5);
        for width in ALL_WIDTHS {
            let sel = crate::dispatch::select(Some(width), Some(DispatchPath::Portable)).unwrap();
            let got = find_top_alignments_simd_sel(&seq, &scoring, 5, sel);
            assert_eq!(got.result.alignments, want.alignments, "portable {width:?}");
        }
    }

    #[test]
    fn protein_agreement() {
        let seq = Seq::protein("MGEKALVPYRLQHCMGEKALVPYRWWMGEKALVPYR").unwrap();
        let scoring = Scoring::protein_default();
        let want = find_top_alignments(&seq, &scoring, 4);
        for width in [LaneWidth::X8, LaneWidth::X16] {
            let got = find_top_alignments_simd(&seq, &scoring, 4, width);
            assert_eq!(got.result.alignments, want.alignments, "{width:?}");
        }
    }

    #[test]
    fn speculation_overhead_is_bounded() {
        // The group engine may align more members than the sequential
        // engine aligns tasks, but not catastrophically (paper: < 0.70 %
        // for titin; small inputs allow more slack).
        let seq = Seq::dna(&"ATGC".repeat(30)).unwrap();
        let scoring = Scoring::dna_example();
        let seq_result = find_top_alignments(&seq, &scoring, 10);
        let simd = find_top_alignments_simd(&seq, &scoring, 10, LaneWidth::X4);
        assert_eq!(simd.result.alignments, seq_result.alignments);
        let ratio = simd.result.stats.alignments as f64 / seq_result.stats.alignments as f64;
        assert!(
            ratio < 4.5,
            "group speculation aligned {ratio}× the sequential count"
        );
        assert!(simd.simd.group_sweeps > 0);
    }

    #[test]
    fn saturation_fallback_keeps_results_exact() {
        let seq = Seq::dna(&"A".repeat(120)).unwrap();
        let scoring = Scoring::new(
            repro_align::ExchangeMatrix::match_mismatch(repro_align::Alphabet::Dna, 800, -1),
            repro_align::GapPenalties::new(2, 1),
        );
        let want = find_top_alignments(&seq, &scoring, 2);
        for width in ALL_WIDTHS {
            let got = find_top_alignments_simd(&seq, &scoring, 2, width);
            assert_eq!(got.result.alignments, want.alignments, "{width:?}");
            assert!(
                got.simd.saturation_fallbacks > 0,
                "this workload must exercise the promotion path ({width:?})"
            );
            assert!(got.simd.promoted_sweeps >= got.simd.saturation_fallbacks);
        }
    }

    #[test]
    fn un_narrowable_scoring_skips_straight_to_wide() {
        // Scores beyond i16 range used to panic inside the kernel; now
        // the narrow profile refuses to build and every sweep promotes.
        let seq = Seq::dna("ATGCATGCATGCATGC").unwrap();
        let scoring = Scoring::new(
            repro_align::ExchangeMatrix::match_mismatch(repro_align::Alphabet::Dna, 40_000, -1),
            repro_align::GapPenalties::new(2, 1),
        );
        let want = find_top_alignments(&seq, &scoring, 3);
        let got = find_top_alignments_simd(&seq, &scoring, 3, LaneWidth::X8);
        assert_eq!(got.result.alignments, want.alignments);
        assert_eq!(got.simd.promoted_sweeps, got.simd.group_sweeps);
        assert_eq!(got.simd.saturation_fallbacks, 0);
    }

    #[test]
    fn recorded_run_matches_plain_and_counts_lanes() {
        use repro_obs::FlightRecorder;
        let seq = Seq::dna(&"ATGC".repeat(10)).unwrap(); // 39 splits
        let scoring = Scoring::dna_example();
        let sel =
            crate::dispatch::select(Some(LaneWidth::X4), Some(DispatchPath::Portable)).unwrap();
        let plain = find_top_alignments_simd_sel(&seq, &scoring, 5, sel);
        let mut rec = FlightRecorder::new();
        let recorded = find_top_alignments_simd_recorded(&seq, &scoring, 5, sel, &mut rec);
        assert_eq!(plain.result.alignments, recorded.result.alignments);
        assert_eq!(plain.result.stats, recorded.result.stats);
        assert_eq!(plain.simd, recorded.simd);
        // The recorder's sweep counters mirror SimdStats exactly.
        assert_eq!(
            rec.counter(Counter::GroupSweeps),
            recorded.simd.group_sweeps
        );
        assert_eq!(
            rec.counter(Counter::PromotedSweeps),
            recorded.simd.promoted_sweeps
        );
        // 39 splits in X4 groups: 9 full groups + one 3-lane group. Every
        // sweep of the short group pads one lane.
        let active = rec.counter(Counter::LanesActive);
        let padded = rec.counter(Counter::LanesPadded);
        assert!(active > 0);
        assert_eq!(
            (active + padded) % 4,
            0,
            "active+padded must be whole vectors"
        );
        // Pops: every stale pop is one group sweep; every fresh pop is
        // one acceptance.
        assert_eq!(recorded.result.stats.stale_pops, recorded.simd.group_sweeps);
        assert_eq!(
            recorded.result.stats.fresh_pops,
            recorded.result.alignments.len() as u64
        );
        assert_eq!(
            rec.phase_entries(Phase::Traceback),
            recorded.result.stats.tracebacks
        );
        assert_eq!(
            rec.phase_entries(Phase::FirstSweep) + rec.phase_entries(Phase::Drain),
            recorded.simd.group_sweeps
        );
    }

    /// Whole-group skips must be invisible: identical alignments and
    /// schedule-sensitive stats at every budget, with real skips firing
    /// on an embedded-repeat workload.
    #[test]
    fn checkpointed_run_matches_plain_bit_for_bit() {
        let scoring = Scoring::dna_example();
        let motif = "ATGCATGCATGC";
        let text = format!("GGTTCCAA{motif}CCAAGGTT{motif}TGCATTGG");
        let seq = Seq::dna(&text).unwrap();
        for width in ALL_WIDTHS {
            let sel = crate::dispatch::select(Some(width), None).unwrap();
            let plain = find_top_alignments_simd_sel(&seq, &scoring, 8, sel);
            for budget in [Some(0usize), Some(1 << 20)] {
                let got = find_top_alignments_simd_checkpointed(
                    &seq,
                    &scoring,
                    8,
                    sel,
                    budget,
                    &mut NoopRecorder,
                );
                assert_eq!(
                    got.result.alignments, plain.result.alignments,
                    "{width:?} budget {budget:?}"
                );
                assert_eq!(got.result.stats.alignments, plain.result.stats.alignments);
                assert_eq!(got.result.stats.stale_pops, plain.result.stats.stale_pops);
                assert_eq!(got.result.stats.fresh_pops, plain.result.stats.fresh_pops);
                assert_eq!(
                    got.result.stats.shadow_rejections,
                    plain.result.stats.shadow_rejections
                );
                if budget == Some(0) {
                    assert_eq!(got.result.stats.checkpoint_hits, 0);
                    assert_eq!(got.result.stats.realign_rows_skipped, 0);
                } else {
                    assert!(
                        got.result.stats.checkpoint_hits > 0,
                        "{width:?}: no group skip fired"
                    );
                    assert!(got.result.stats.realign_rows_skipped > 0);
                    assert!(got.simd.group_sweeps < plain.simd.group_sweeps);
                }
            }
        }
    }

    #[test]
    fn empty_and_tiny() {
        let scoring = Scoring::dna_example();
        for text in ["", "A", "AA", "ATG"] {
            let seq = Seq::dna(text).unwrap();
            let want = find_top_alignments(&seq, &scoring, 3);
            let got = find_top_alignments_simd(&seq, &scoring, 3, LaneWidth::X4);
            assert_eq!(got.result.alignments, want.alignments, "input {text:?}");
        }
    }

    #[test]
    fn seeded_matches_unpruned_at_every_width() {
        let scoring = Scoring::dna_example();
        let motif = "ATGCATGCATGC";
        for text in [
            format!("GGTTCCAACCGGTTAACCAGTGCA{motif}{motif}CAGTCCGGAATTCCGGTAACCGT"),
            "ACGTTGCAACGTACGTTGCAGGTT".to_string(),
            "AAAAAAAAAAAAAAA".to_string(),
            "ATG".to_string(),
        ] {
            let seq = Seq::dna(&text).unwrap();
            for count in [1, 5] {
                let want = find_top_alignments(&seq, &scoring, count);
                for width in ALL_WIDTHS {
                    let sel = crate::dispatch::select(Some(width), None).unwrap();
                    for budget in [None, Some(1 << 20)] {
                        let got = find_top_alignments_simd_seeded(
                            &seq,
                            &scoring,
                            count,
                            sel,
                            budget,
                            Some(repro_core::SeedConfig::default()),
                            &mut NoopRecorder,
                        );
                        assert_eq!(
                            got.result.alignments, want.alignments,
                            "{width:?} count {count} budget {budget:?} on {text}"
                        );
                        assert_eq!(got.result.triangle, want.triangle);
                    }
                }
            }
        }
    }

    #[test]
    fn seeded_prunes_whole_groups_on_low_repeat_input() {
        let motif = "ATGCATGCATGC";
        let text = format!("GGTTCCAACCGGTTAACCAGTGCA{motif}{motif}CAGTCCGGAATTCCGGTAACCGT");
        let seq = Seq::dna(&text).unwrap();
        let scoring = Scoring::dna_example();
        let sel = crate::dispatch::select(Some(LaneWidth::X4), None).unwrap();
        let got = find_top_alignments_simd_seeded(
            &seq,
            &scoring,
            1,
            sel,
            None,
            Some(repro_core::SeedConfig::default()),
            &mut NoopRecorder,
        );
        let s = &got.result.stats;
        assert!(
            s.splits_pruned > 0,
            "expected whole lane-packs pruned, got {}",
            s.splits_pruned
        );
        // Pruning is lane-pack-granular: the pruned splits are whole
        // groups' worth (the last group may be short).
        assert!(s.seed_index_build_ns > 0);
        let want = find_top_alignments(&seq, &scoring, 1);
        assert_eq!(got.result.alignments, want.alignments);
    }
}
