//! Group-granular top-alignment search (paper §4.1's static scheme).
//!
//! The task queue holds *groups* of neighbouring splits; a group's
//! priority is its best member's (upper-bound) score. Popping a stale
//! group realigns **all** members in one interleaved SIMD sweep — the
//! speculation the paper describes: "if a matrix is scheduled for
//! computation, it is likely that the neighbouring matrices will be
//! scheduled shortly thereafter". A fresh group at the head of the queue
//! yields its best member as the next top alignment.
//!
//! Results are identical to the sequential engine: acceptance order is
//! still driven by exact scores under the same deterministic tie-breaks,
//! only the *work grouping* differs. The extra lane-alignments performed
//! are reported in [`SimdStats`] (the paper measured < 0.70 % extra).

use crate::group::{align_group_striped, DEFAULT_GROUP_STRIPE};
use crate::lanes::SimdVec;
use crate::LaneWidth;
use repro_align::{Score, Scoring, Seq};
use repro_core::bottom::best_valid_entry;
use repro_core::{accept_task, BottomRowStore, OverrideTriangle, Stats, TopAlignment, TopAlignments};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// SIMD-engine-specific counters, on top of the common [`Stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimdStats {
    /// Group sweeps performed.
    pub group_sweeps: u64,
    /// Vector cells computed (including dead lanes).
    pub vector_cells: u64,
    /// Groups recomputed scalarly because a lane saturated.
    pub saturation_fallbacks: u64,
}

/// Result of the SIMD engine: the common result plus SIMD counters.
#[derive(Debug, Clone)]
pub struct SimdFinderResult {
    /// Alignments, stats and triangle, exactly as the sequential engine
    /// reports them.
    pub result: TopAlignments,
    /// SIMD-specific counters.
    pub simd: SimdStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GroupTask {
    score: Score,
    /// `Reverse` so equal scores pop the lowest group first, matching the
    /// sequential engine's smallest-split tie-break.
    gi: Reverse<usize>,
    aligned_with: usize,
}

impl Ord for GroupTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| self.gi.cmp(&other.gi))
    }
}

impl PartialOrd for GroupTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Find `count` top alignments using lane width `width`; produces the
/// same alignments as [`repro_core::find_top_alignments`].
///
/// ```
/// use repro_simd::{find_top_alignments_simd, LaneWidth};
/// use repro_align::{Scoring, Seq};
///
/// let seq = Seq::dna("ATGCATGCATGC").unwrap();
/// let run = find_top_alignments_simd(&seq, &Scoring::dna_example(), 3, LaneWidth::X8);
/// assert_eq!(run.result.alignments.len(), 3);
/// assert!(run.simd.group_sweeps > 0);
/// ```
pub fn find_top_alignments_simd(
    seq: &Seq,
    scoring: &Scoring,
    count: usize,
    width: LaneWidth,
) -> SimdFinderResult {
    // On x86-64 the explicit SSE2 lane types are used (the portable
    // 4-lane array form scalarises); results are identical either way —
    // the lanes tests verify op-for-op equality.
    #[cfg(target_arch = "x86_64")]
    {
        match width {
            LaneWidth::X4 => run::<crate::lanes::sse2::I16x4Sse2>(seq, scoring, count),
            LaneWidth::X8 => run::<crate::lanes::sse2::I16x8Sse2>(seq, scoring, count),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        match width {
            LaneWidth::X4 => run::<crate::lanes::I16x4>(seq, scoring, count),
            LaneWidth::X8 => run::<crate::lanes::I16x8>(seq, scoring, count),
        }
    }
}

#[allow(clippy::needless_range_loop)] // index loops mirror the paper's pseudo code
fn run<V: SimdVec>(seq: &Seq, scoring: &Scoring, count: usize) -> SimdFinderResult {
    let m = seq.len();
    let splits = m.saturating_sub(1); // splits are 1..=splits
    let lanes = V::LANES;
    let ngroups = splits.div_ceil(lanes.max(1));

    let group_r0 = |gi: usize| 1 + gi * lanes;
    let group_lanes = |gi: usize| lanes.min(splits - gi * lanes);

    let mut triangle = OverrideTriangle::new(m);
    let mut bottomstore = BottomRowStore::new(m);
    let mut stats = Stats::new();
    let mut simd = SimdStats::default();
    let mut alignments: Vec<TopAlignment> = Vec::new();

    // Last exact member scores per group (valid, shadow-filtered).
    let mut member_scores: Vec<Vec<Score>> = (0..ngroups)
        .map(|gi| vec![Score::MAX; group_lanes(gi)])
        .collect();

    let mut queue: BinaryHeap<GroupTask> = (0..ngroups)
        .map(|gi| GroupTask {
            score: Score::MAX,
            gi: Reverse(gi),
            aligned_with: usize::MAX,
        })
        .collect();

    while alignments.len() < count {
        let Some(task) = queue.pop() else { break };
        if task.score <= 0 {
            break;
        }
        let Reverse(gi) = task.gi;
        let tops_found = alignments.len();

        if task.aligned_with == tops_found {
            // Fresh group at the head: its best member is the next top
            // alignment (smallest split on ties).
            let scores = &member_scores[gi];
            let (best_l, &best_score) = scores
                .iter()
                .enumerate()
                .max_by(|(la, sa), (lb, sb)| sa.cmp(sb).then(lb.cmp(la)))
                .expect("groups are never empty");
            let r = group_r0(gi) + best_l;
            let index = tops_found;
            let (top, cells) = accept_task(
                seq,
                scoring,
                r,
                best_score,
                &mut triangle,
                &bottomstore,
                index,
            );
            stats.record_traceback(cells);
            alignments.push(top);
            queue.push(GroupTask {
                score: task.score,
                gi: Reverse(gi),
                aligned_with: task.aligned_with,
            });
        } else {
            let r0 = group_r0(gi);
            let nl = group_lanes(gi);
            let first_pass = task.aligned_with == usize::MAX;
            let tri = if first_pass { None } else { Some(&triangle) };
            let mut g = align_group_striped::<V>(
                seq.codes(),
                scoring,
                r0,
                nl,
                tri,
                DEFAULT_GROUP_STRIPE,
            );
            simd.group_sweeps += 1;
            simd.vector_cells += g.vector_cells;
            if g.saturated {
                // Scores may be clamped: recompute every member scalarly.
                simd.saturation_fallbacks += 1;
                for l in 0..nl {
                    let r = r0 + l;
                    let (prefix, suffix) = seq.split(r);
                    let mask = repro_core::SplitMask::new(&triangle, r);
                    g.rows[l] = repro_align::sw_last_row(prefix, suffix, scoring, mask).row;
                }
            }
            let per_lane_cells = g.cells / nl as u64;
            let mut group_best = 0;
            for l in 0..nl {
                let r = r0 + l;
                let score = if first_pass {
                    debug_assert!(triangle.is_empty());
                    let s = g.rows[l].iter().copied().max().unwrap_or(0).max(0);
                    bottomstore.store(r, &g.rows[l]);
                    s
                } else {
                    let original = bottomstore
                        .get(r)
                        .expect("realigned member must have a stored first-pass row");
                    best_valid_entry(&g.rows[l], original).0
                };
                stats.record_alignment(per_lane_cells, tops_found);
                member_scores[gi][l] = score;
                group_best = group_best.max(score);
            }
            queue.push(GroupTask {
                score: group_best,
                gi: Reverse(gi),
                aligned_with: tops_found,
            });
        }
    }

    SimdFinderResult {
        result: TopAlignments {
            alignments,
            stats,
            triangle,
        },
        simd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repro_core::find_top_alignments;

    #[test]
    fn figure4_example_matches_sequential() {
        let seq = Seq::dna("ATGCATGCATGC").unwrap();
        let scoring = Scoring::dna_example();
        let seq_result = find_top_alignments(&seq, &scoring, 3);
        for width in [LaneWidth::X4, LaneWidth::X8] {
            let simd = find_top_alignments_simd(&seq, &scoring, 3, width);
            assert_eq!(
                simd.result.alignments, seq_result.alignments,
                "{width:?} disagrees with the sequential engine"
            );
        }
    }

    #[test]
    fn agrees_on_varied_inputs() {
        let scoring = Scoring::dna_example();
        for text in [
            "ACGTTGCAACGTACGTTGCAGGTT",
            "AAAAAAAAAAAAAAA",
            "ATATATATATATATATATAT",
            "ACGGTACGGTAACGGTTTTTACGGT",
            "ACGT",
        ] {
            let seq = Seq::dna(text).unwrap();
            let want = find_top_alignments(&seq, &scoring, 6);
            for width in [LaneWidth::X4, LaneWidth::X8] {
                let got = find_top_alignments_simd(&seq, &scoring, 6, width);
                assert_eq!(got.result.alignments, want.alignments, "{width:?} on {text}");
            }
        }
    }

    #[test]
    fn protein_agreement() {
        let seq = Seq::protein("MGEKALVPYRLQHCMGEKALVPYRWWMGEKALVPYR").unwrap();
        let scoring = Scoring::protein_default();
        let want = find_top_alignments(&seq, &scoring, 4);
        let got = find_top_alignments_simd(&seq, &scoring, 4, LaneWidth::X8);
        assert_eq!(got.result.alignments, want.alignments);
    }

    #[test]
    fn speculation_overhead_is_bounded() {
        // The group engine may align more members than the sequential
        // engine aligns tasks, but not catastrophically (paper: < 0.70 %
        // for titin; small inputs allow more slack).
        let seq = Seq::dna(&"ATGC".repeat(30)).unwrap();
        let scoring = Scoring::dna_example();
        let seq_result = find_top_alignments(&seq, &scoring, 10);
        let simd = find_top_alignments_simd(&seq, &scoring, 10, LaneWidth::X4);
        assert_eq!(simd.result.alignments, seq_result.alignments);
        let ratio = simd.result.stats.alignments as f64 / seq_result.stats.alignments as f64;
        assert!(
            ratio < 4.5,
            "group speculation aligned {ratio}× the sequential count"
        );
        assert!(simd.simd.group_sweeps > 0);
    }

    #[test]
    fn saturation_fallback_keeps_results_exact() {
        let seq = Seq::dna(&"A".repeat(120)).unwrap();
        let scoring = Scoring::new(
            repro_align::ExchangeMatrix::match_mismatch(repro_align::Alphabet::Dna, 800, -1),
            repro_align::GapPenalties::new(2, 1),
        );
        let want = find_top_alignments(&seq, &scoring, 2);
        let got = find_top_alignments_simd(&seq, &scoring, 2, LaneWidth::X8);
        assert_eq!(got.result.alignments, want.alignments);
        assert!(
            got.simd.saturation_fallbacks > 0,
            "this workload must exercise the fallback"
        );
    }

    #[test]
    fn empty_and_tiny() {
        let scoring = Scoring::dna_example();
        for text in ["", "A", "AA", "ATG"] {
            let seq = Seq::dna(text).unwrap();
            let want = find_top_alignments(&seq, &scoring, 3);
            let got = find_top_alignments_simd(&seq, &scoring, 3, LaneWidth::X4);
            assert_eq!(got.result.alignments, want.alignments, "input {text:?}");
        }
    }
}
