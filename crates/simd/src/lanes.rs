//! Fixed-width lane vectors over 16-bit and 32-bit score elements.
//!
//! The portable implementations operate on fixed-size `[T; N]` arrays
//! in straight-line loops; at `opt-level ≥ 2` LLVM lowers these to the
//! SSE2 `PADDSW`/`PSUBSW`/`PMAXSW` instructions on x86-64 (and to NEON
//! on aarch64). On x86-64, explicit `core::arch` kernels are also
//! provided: SSE2 (`__m128i`, the exact instructions the paper's
//! compiler intrinsics emitted) for the 4- and 8-lane `i16` types, and
//! AVX2 (`__m256i`, `VPADDSW`/`VPSUBSW`/`VPMAXSW`) for the 16-lane
//! `i16` type. The [`crate::dispatch`] module probes CPU features at
//! runtime and selects the widest safe kernel.
//!
//! Two element disciplines coexist behind [`SimdElem`]:
//!
//! * **`i16`** — the paper's "shorts": saturating arithmetic, with
//!   `i16::MAX` acting as the saturation sentinel that triggers the
//!   promotion path;
//! * **`i32`** — the promotion element, matching the scalar reference
//!   kernel's plain (two's-complement) arithmetic bit for bit, so a
//!   promoted sweep is exactly the scalar recurrence run `N` matrices
//!   at a time.
//!
//! Compiling with the `portable-only` cargo feature removes every
//! `core::arch` kernel, leaving only the portable arrays — CI runs the
//! whole suite in that configuration to keep both dispatch branches
//! honest.

use repro_align::Score;

/// A scalar element a lane vector can hold: the score type narrowed
/// (i16) or kept wide (i32), with the overflow discipline the matching
/// hardware instructions implement.
pub trait SimdElem: Copy + Ord + std::fmt::Debug + 'static {
    /// Additive identity.
    const ZERO: Self;
    /// Largest value; for `i16` this doubles as the saturation sentinel.
    const MAX: Self;
    /// "No predecessor" sentinel for the running gap maxima. `i16` uses
    /// `i16::MIN` (saturating subtraction keeps it pinned); `i32` uses
    /// [`repro_align::NEG_INF`], the exact constant of the scalar
    /// kernels, so promoted sweeps match them bit for bit.
    const NEG_INF: Self;
    /// Size in bytes (drives the L1 stripe-width rule).
    const BYTES: usize;
    /// Element addition: saturating for `i16` (hardware `PADDSW`),
    /// wrapping for `i32` (hardware `PADDD`, matching scalar `+`).
    fn vadd(self, o: Self) -> Self;
    /// Element subtraction, same discipline as [`SimdElem::vadd`].
    fn vsub(self, o: Self) -> Self;
    /// Checked narrowing from the scalar score type.
    fn from_score(s: Score) -> Option<Self>;
    /// Saturating narrowing from the scalar score type, for restoring
    /// checkpointed inter-row state: values below the element's range
    /// pin to `Self::NEG_INF`-adjacent (`i16::MIN`), which is
    /// behaviourally identical in the recurrence because any gap maximum
    /// below `−open` loses every comparison it enters. Values *above*
    /// the range must be rejected by the caller beforehand (they would
    /// clamp downward and change results).
    fn from_score_sat(s: Score) -> Self;
    /// Widening back to the scalar score type.
    fn to_score(self) -> Score;
}

impl SimdElem for i16 {
    const ZERO: Self = 0;
    const MAX: Self = i16::MAX;
    const NEG_INF: Self = i16::MIN;
    const BYTES: usize = 2;

    #[inline(always)]
    fn vadd(self, o: Self) -> Self {
        self.saturating_add(o)
    }

    #[inline(always)]
    fn vsub(self, o: Self) -> Self {
        self.saturating_sub(o)
    }

    #[inline(always)]
    fn from_score(s: Score) -> Option<Self> {
        s.try_into().ok()
    }

    #[inline(always)]
    fn from_score_sat(s: Score) -> Self {
        s.clamp(i16::MIN as Score, i16::MAX as Score) as i16
    }

    #[inline(always)]
    fn to_score(self) -> Score {
        self as Score
    }
}

impl SimdElem for i32 {
    const ZERO: Self = 0;
    const MAX: Self = i32::MAX;
    const NEG_INF: Self = repro_align::NEG_INF;
    const BYTES: usize = 4;

    #[inline(always)]
    fn vadd(self, o: Self) -> Self {
        self.wrapping_add(o)
    }

    #[inline(always)]
    fn vsub(self, o: Self) -> Self {
        self.wrapping_sub(o)
    }

    #[inline(always)]
    fn from_score(s: Score) -> Option<Self> {
        Some(s)
    }

    #[inline(always)]
    fn from_score_sat(s: Score) -> Self {
        s
    }

    #[inline(always)]
    fn to_score(self) -> Score {
        self
    }
}

/// A fixed-width vector of [`SimdElem`] lanes.
pub trait SimdVec: Copy + std::fmt::Debug {
    /// The per-lane element type.
    type Elem: SimdElem;

    /// Number of lanes.
    const LANES: usize;

    /// All lanes set to `v`.
    fn splat(v: Self::Elem) -> Self;

    /// Build from a per-lane function.
    fn from_fn(f: impl FnMut(usize) -> Self::Elem) -> Self;

    /// Read one lane.
    fn get(self, lane: usize) -> Self::Elem;

    /// Lane-wise addition under the element's overflow discipline.
    fn adds(self, o: Self) -> Self;

    /// Lane-wise subtraction under the element's overflow discipline.
    fn subs(self, o: Self) -> Self;

    /// Lane-wise maximum (the `PMAXSW` the paper highlights: "the SSE and
    /// SSE2 extensions contain a parallel MAX operator, which is not
    /// available in the conventional instruction set").
    fn max(self, o: Self) -> Self;

    /// Zero every lane with index `>= keep` (left-border correction for
    /// partially active columns).
    fn zero_lanes_from(self, keep: usize) -> Self;

    /// `true` iff any lane equals `Elem::MAX` (saturation sentinel; only
    /// meaningful for the saturating `i16` element).
    fn any_saturated(self) -> bool {
        (0..Self::LANES).any(|l| self.get(l) == Self::Elem::MAX)
    }
}

macro_rules! portable_lanes {
    ($name:ident, $elem:ty, $n:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name(pub [$elem; $n]);

        impl SimdVec for $name {
            type Elem = $elem;
            const LANES: usize = $n;

            #[inline(always)]
            fn splat(v: $elem) -> Self {
                $name([v; $n])
            }

            #[inline(always)]
            fn from_fn(mut f: impl FnMut(usize) -> $elem) -> Self {
                let mut a = [0 as $elem; $n];
                for (l, slot) in a.iter_mut().enumerate() {
                    *slot = f(l);
                }
                $name(a)
            }

            #[inline(always)]
            fn get(self, lane: usize) -> $elem {
                self.0[lane]
            }

            #[inline(always)]
            fn adds(self, o: Self) -> Self {
                let mut a = [0 as $elem; $n];
                for i in 0..$n {
                    a[i] = SimdElem::vadd(self.0[i], o.0[i]);
                }
                $name(a)
            }

            #[inline(always)]
            fn subs(self, o: Self) -> Self {
                let mut a = [0 as $elem; $n];
                for i in 0..$n {
                    a[i] = SimdElem::vsub(self.0[i], o.0[i]);
                }
                $name(a)
            }

            #[inline(always)]
            fn max(self, o: Self) -> Self {
                let mut a = [0 as $elem; $n];
                for i in 0..$n {
                    a[i] = self.0[i].max(o.0[i]);
                }
                $name(a)
            }

            #[inline(always)]
            fn zero_lanes_from(self, keep: usize) -> Self {
                let mut a = self.0;
                for slot in a.iter_mut().skip(keep) {
                    *slot = 0;
                }
                $name(a)
            }
        }
    };
}

portable_lanes!(
    I16x4,
    i16,
    4,
    "Four saturating `i16` lanes — the paper's SSE width."
);
portable_lanes!(
    I16x8,
    i16,
    8,
    "Eight saturating `i16` lanes — the paper's SSE2 width."
);
portable_lanes!(
    I16x16,
    i16,
    16,
    "Sixteen saturating `i16` lanes — the AVX2 width (portable form)."
);
portable_lanes!(
    I32x4,
    i32,
    4,
    "Four wide `i32` lanes — the 4-lane promotion element."
);
portable_lanes!(
    I32x8,
    i32,
    8,
    "Eight wide `i32` lanes — the 8-lane promotion element."
);
portable_lanes!(
    I32x16,
    i32,
    16,
    "Sixteen wide `i32` lanes — the 16-lane promotion element."
);

/// Explicit SSE2 lanes (x86-64 only): the literal `PADDSW`/`PSUBSW`/
/// `PMAXSW` path. Results are identical to [`I16x8`]; this type exists
/// so the benchmarks can compare compiler autovectorisation against
/// hand-placed intrinsics, as the paper compared compiler-vectorised code
/// against intrinsics.
#[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
pub mod sse2 {
    use super::SimdVec;
    use core::arch::x86_64::*;

    /// Eight saturating `i16` lanes backed by a literal `__m128i`.
    #[derive(Clone, Copy)]
    pub struct I16x8Sse2(pub __m128i);

    impl std::fmt::Debug for I16x8Sse2 {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let a = self.to_array();
            write!(f, "I16x8Sse2({a:?})")
        }
    }

    impl I16x8Sse2 {
        fn to_array(self) -> [i16; 8] {
            // SAFETY: SSE2 is a baseline feature of x86-64.
            unsafe {
                let mut a = [0i16; 8];
                _mm_storeu_si128(a.as_mut_ptr() as *mut __m128i, self.0);
                a
            }
        }

        fn from_array(a: [i16; 8]) -> Self {
            // SAFETY: SSE2 is a baseline feature of x86-64.
            unsafe { I16x8Sse2(_mm_loadu_si128(a.as_ptr() as *const __m128i)) }
        }
    }

    /// Four saturating `i16` lanes on a full-width `__m128i`: lanes 4–7
    /// carry dead values that are never read (extraction, saturation and
    /// border masking all respect `LANES = 4`). This models the paper's
    /// SSE configuration at intrinsics speed — [`super::I16x4`]'s 64-bit
    /// array form scalarises poorly.
    #[derive(Clone, Copy)]
    pub struct I16x4Sse2(pub __m128i);

    impl std::fmt::Debug for I16x4Sse2 {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let a = I16x8Sse2(self.0).to_array();
            write!(f, "I16x4Sse2({:?})", &a[..4])
        }
    }

    impl SimdVec for I16x4Sse2 {
        type Elem = i16;
        const LANES: usize = 4;

        #[inline(always)]
        fn splat(v: i16) -> Self {
            I16x4Sse2(I16x8Sse2::splat(v).0)
        }

        #[inline(always)]
        fn from_fn(mut f: impl FnMut(usize) -> i16) -> Self {
            I16x4Sse2(I16x8Sse2::from_fn(|l| if l < 4 { f(l) } else { 0 }).0)
        }

        #[inline(always)]
        fn get(self, lane: usize) -> i16 {
            debug_assert!(lane < 4);
            I16x8Sse2(self.0).get(lane)
        }

        #[inline(always)]
        fn adds(self, o: Self) -> Self {
            I16x4Sse2(I16x8Sse2(self.0).adds(I16x8Sse2(o.0)).0)
        }

        #[inline(always)]
        fn subs(self, o: Self) -> Self {
            I16x4Sse2(I16x8Sse2(self.0).subs(I16x8Sse2(o.0)).0)
        }

        #[inline(always)]
        fn max(self, o: Self) -> Self {
            I16x4Sse2(I16x8Sse2(self.0).max(I16x8Sse2(o.0)).0)
        }

        #[inline(always)]
        fn zero_lanes_from(self, keep: usize) -> Self {
            I16x4Sse2(I16x8Sse2(self.0).zero_lanes_from(keep.min(4)).0)
        }
    }

    impl SimdVec for I16x8Sse2 {
        type Elem = i16;
        const LANES: usize = 8;

        #[inline(always)]
        fn splat(v: i16) -> Self {
            // SAFETY: SSE2 is a baseline feature of x86-64.
            unsafe { I16x8Sse2(_mm_set1_epi16(v)) }
        }

        #[inline(always)]
        fn from_fn(mut f: impl FnMut(usize) -> i16) -> Self {
            let mut a = [0i16; 8];
            for (l, slot) in a.iter_mut().enumerate() {
                *slot = f(l);
            }
            Self::from_array(a)
        }

        #[inline(always)]
        fn get(self, lane: usize) -> i16 {
            self.to_array()[lane]
        }

        #[inline(always)]
        fn adds(self, o: Self) -> Self {
            // SAFETY: SSE2 is a baseline feature of x86-64.
            unsafe { I16x8Sse2(_mm_adds_epi16(self.0, o.0)) }
        }

        #[inline(always)]
        fn subs(self, o: Self) -> Self {
            // SAFETY: SSE2 is a baseline feature of x86-64.
            unsafe { I16x8Sse2(_mm_subs_epi16(self.0, o.0)) }
        }

        #[inline(always)]
        fn max(self, o: Self) -> Self {
            // SAFETY: SSE2 is a baseline feature of x86-64.
            unsafe { I16x8Sse2(_mm_max_epi16(self.0, o.0)) }
        }

        #[inline(always)]
        fn zero_lanes_from(self, keep: usize) -> Self {
            let mut a = self.to_array();
            for slot in a.iter_mut().skip(keep.min(8)) {
                *slot = 0;
            }
            Self::from_array(a)
        }
    }
}

/// Explicit AVX2 lanes (x86-64 only): sixteen saturating `i16` lanes on
/// a `__m256i` (`VPADDSW`/`VPSUBSW`/`VPMAXSW`).
///
/// Unlike SSE2, AVX2 is **not** a baseline feature of x86-64: every
/// operation on [`avx2::I16x16Avx2`] requires the CPU to support AVX2
/// at runtime. The [`crate::dispatch`] module only selects this type
/// after `is_x86_feature_detected!("avx2")` succeeds; constructing or
/// operating on it on a CPU without AVX2 is undefined behaviour.
#[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
pub mod avx2 {
    use super::SimdVec;
    use core::arch::x86_64::*;

    /// Sixteen saturating `i16` lanes backed by a literal `__m256i`.
    /// Requires AVX2 at runtime (see the module docs).
    #[derive(Clone, Copy)]
    pub struct I16x16Avx2(pub __m256i);

    impl std::fmt::Debug for I16x16Avx2 {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let a = self.to_array();
            write!(f, "I16x16Avx2({a:?})")
        }
    }

    impl I16x16Avx2 {
        fn to_array(self) -> [i16; 16] {
            // SAFETY: caller of any I16x16Avx2 operation guarantees AVX
            // support (dispatch gates on AVX2, which implies AVX).
            unsafe {
                let mut a = [0i16; 16];
                _mm256_storeu_si256(a.as_mut_ptr() as *mut __m256i, self.0);
                a
            }
        }

        fn from_array(a: [i16; 16]) -> Self {
            // SAFETY: as in `to_array`.
            unsafe { I16x16Avx2(_mm256_loadu_si256(a.as_ptr() as *const __m256i)) }
        }
    }

    impl SimdVec for I16x16Avx2 {
        type Elem = i16;
        const LANES: usize = 16;

        #[inline(always)]
        fn splat(v: i16) -> Self {
            // SAFETY: dispatch guarantees AVX2 before this type is used.
            unsafe { I16x16Avx2(_mm256_set1_epi16(v)) }
        }

        #[inline(always)]
        fn from_fn(mut f: impl FnMut(usize) -> i16) -> Self {
            let mut a = [0i16; 16];
            for (l, slot) in a.iter_mut().enumerate() {
                *slot = f(l);
            }
            Self::from_array(a)
        }

        #[inline(always)]
        fn get(self, lane: usize) -> i16 {
            self.to_array()[lane]
        }

        #[inline(always)]
        fn adds(self, o: Self) -> Self {
            // SAFETY: dispatch guarantees AVX2 before this type is used.
            unsafe { I16x16Avx2(_mm256_adds_epi16(self.0, o.0)) }
        }

        #[inline(always)]
        fn subs(self, o: Self) -> Self {
            // SAFETY: dispatch guarantees AVX2 before this type is used.
            unsafe { I16x16Avx2(_mm256_subs_epi16(self.0, o.0)) }
        }

        #[inline(always)]
        fn max(self, o: Self) -> Self {
            // SAFETY: dispatch guarantees AVX2 before this type is used.
            unsafe { I16x16Avx2(_mm256_max_epi16(self.0, o.0)) }
        }

        #[inline(always)]
        fn zero_lanes_from(self, keep: usize) -> Self {
            let mut a = self.to_array();
            for slot in a.iter_mut().skip(keep.min(16)) {
                *slot = 0;
            }
            Self::from_array(a)
        }

        #[inline(always)]
        fn any_saturated(self) -> bool {
            // SAFETY: dispatch guarantees AVX2 before this type is used.
            unsafe {
                let sat = _mm256_cmpeq_epi16(self.0, _mm256_set1_epi16(i16::MAX));
                _mm256_movemask_epi8(sat) != 0
            }
        }
    }
}

/// The fastest *always-safe* kernel type for 4 `i16` lanes on this
/// build: explicit SSE2 on x86-64 (a baseline feature there), portable
/// arrays elsewhere or under `portable-only`. The 16-lane AVX2 type has
/// no such alias — AVX2 needs runtime detection, which only the
/// [`crate::dispatch`] module performs.
#[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
pub type NativeI16x4 = sse2::I16x4Sse2;
/// Portable fallback of [`NativeI16x4`].
#[cfg(not(all(target_arch = "x86_64", not(feature = "portable-only"))))]
pub type NativeI16x4 = I16x4;

/// The fastest always-safe kernel type for 8 `i16` lanes on this build
/// (see [`NativeI16x4`]).
#[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
pub type NativeI16x8 = sse2::I16x8Sse2;
/// Portable fallback of [`NativeI16x8`].
#[cfg(not(all(target_arch = "x86_64", not(feature = "portable-only"))))]
pub type NativeI16x8 = I16x8;

#[cfg(test)]
mod tests {
    use super::*;

    fn e<V: SimdVec>(x: Score) -> V::Elem {
        V::Elem::from_score(x).expect("test constant fits the element")
    }

    fn check_basic<V: SimdVec>() {
        let a = V::from_fn(|l| e::<V>(l as Score));
        let b = V::splat(e::<V>(10));
        let sum = a.adds(b);
        for l in 0..V::LANES {
            assert_eq!(sum.get(l).to_score(), l as Score + 10);
        }
        let diff = b.subs(a);
        for l in 0..V::LANES {
            assert_eq!(diff.get(l).to_score(), 10 - l as Score);
        }
        let m = a.max(V::splat(e::<V>(2)));
        for l in 0..V::LANES {
            assert_eq!(m.get(l).to_score(), (l as Score).max(2));
        }
    }

    fn check_saturation<V: SimdVec<Elem = i16>>() {
        let big = V::splat(i16::MAX - 1);
        let sum = big.adds(V::splat(100));
        assert!(sum.any_saturated());
        for l in 0..V::LANES {
            assert_eq!(sum.get(l), i16::MAX);
        }
        let small = V::splat(i16::MIN + 1);
        let diff = small.subs(V::splat(100));
        for l in 0..V::LANES {
            assert_eq!(diff.get(l), i16::MIN);
        }
        assert!(!V::splat(5).any_saturated());
    }

    fn check_zeroing<V: SimdVec>() {
        let a = V::splat(e::<V>(7));
        let z = a.zero_lanes_from(2);
        for l in 0..V::LANES {
            assert_eq!(z.get(l).to_score(), if l < 2 { 7 } else { 0 });
        }
        let all = a.zero_lanes_from(V::LANES);
        for l in 0..V::LANES {
            assert_eq!(all.get(l).to_score(), 7);
        }
    }

    #[test]
    fn portable_x4() {
        check_basic::<I16x4>();
        check_saturation::<I16x4>();
        check_zeroing::<I16x4>();
    }

    #[test]
    fn portable_x8() {
        check_basic::<I16x8>();
        check_saturation::<I16x8>();
        check_zeroing::<I16x8>();
    }

    #[test]
    fn portable_x16() {
        check_basic::<I16x16>();
        check_saturation::<I16x16>();
        check_zeroing::<I16x16>();
    }

    #[test]
    fn portable_wide() {
        check_basic::<I32x4>();
        check_zeroing::<I32x4>();
        check_basic::<I32x8>();
        check_zeroing::<I32x8>();
        check_basic::<I32x16>();
        check_zeroing::<I32x16>();
    }

    #[test]
    fn wide_matches_scalar_wrapping() {
        // The i32 element is the scalar kernel's arithmetic verbatim:
        // wrapping, not saturating.
        let a = I32x8::splat(i32::MAX - 1);
        let sum = a.adds(I32x8::splat(100));
        assert_eq!(sum.get(0), (i32::MAX - 1).wrapping_add(100));
        assert_eq!(i32::NEG_INF, repro_align::NEG_INF);
    }

    #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
    #[test]
    fn sse2_x8_matches_portable() {
        use super::sse2::I16x8Sse2;
        check_basic::<I16x8Sse2>();
        check_saturation::<I16x8Sse2>();
        check_zeroing::<I16x8Sse2>();
        // Differential: random-ish op sequences agree lane-for-lane.
        let mut x: i32 = 12345;
        let mut next = move || {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            ((x >> 8) % 2000 - 1000) as i16
        };
        for _ in 0..100 {
            let (a, b) = (next(), next());
            let pa = I16x8::splat(a).adds(I16x8::splat(b));
            let ia = I16x8Sse2::splat(a).adds(I16x8Sse2::splat(b));
            for l in 0..8 {
                assert_eq!(pa.get(l), ia.get(l));
            }
            let pm = I16x8::splat(a).max(I16x8::splat(b)).subs(I16x8::splat(3));
            let im = I16x8Sse2::splat(a)
                .max(I16x8Sse2::splat(b))
                .subs(I16x8Sse2::splat(3));
            for l in 0..8 {
                assert_eq!(pm.get(l), im.get(l));
            }
        }
    }

    #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
    #[test]
    fn avx2_x16_matches_portable() {
        use super::avx2::I16x16Avx2;
        if !crate::test_support::require_avx2("avx2_x16_matches_portable") {
            return;
        }
        check_basic::<I16x16Avx2>();
        check_saturation::<I16x16Avx2>();
        check_zeroing::<I16x16Avx2>();
        let mut x: i32 = 987;
        let mut next = move || {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            ((x >> 8) % 2000 - 1000) as i16
        };
        for _ in 0..100 {
            let (a, b) = (next(), next());
            let pa = I16x16::from_fn(|l| a.wrapping_add(l as i16))
                .adds(I16x16::splat(b))
                .max(I16x16::splat(3))
                .subs(I16x16::splat(a / 2));
            let ia = I16x16Avx2::from_fn(|l| a.wrapping_add(l as i16))
                .adds(I16x16Avx2::splat(b))
                .max(I16x16Avx2::splat(3))
                .subs(I16x16Avx2::splat(a / 2));
            for l in 0..16 {
                assert_eq!(pa.get(l), ia.get(l), "lane {l}");
            }
        }
    }
}
