//! Saturating 16-bit lane vectors.
//!
//! The portable implementations operate on fixed-size `[i16; N]` arrays
//! in straight-line loops; at `opt-level ≥ 2` LLVM lowers these to the
//! SSE2 `PADDSW`/`PSUBSW`/`PMAXSW` instructions on x86-64 (and to NEON on
//! aarch64). On x86-64 an explicit `core::arch` SSE2 kernel is also
//! provided for the 8-lane type and used automatically — the exact
//! instructions the paper's compiler intrinsics emitted.

/// A fixed-width vector of saturating `i16` lanes.
pub trait SimdVec: Copy + std::fmt::Debug {
    /// Number of lanes.
    const LANES: usize;

    /// All lanes set to `v`.
    fn splat(v: i16) -> Self;

    /// Build from a per-lane function.
    fn from_fn(f: impl FnMut(usize) -> i16) -> Self;

    /// Read one lane.
    fn get(self, lane: usize) -> i16;

    /// Lane-wise saturating addition.
    fn adds(self, o: Self) -> Self;

    /// Lane-wise saturating subtraction.
    fn subs(self, o: Self) -> Self;

    /// Lane-wise maximum (the `PMAXSW` the paper highlights: "the SSE and
    /// SSE2 extensions contain a parallel MAX operator, which is not
    /// available in the conventional instruction set").
    fn max(self, o: Self) -> Self;

    /// Zero every lane with index `>= keep` (left-border correction for
    /// partially active columns).
    fn zero_lanes_from(self, keep: usize) -> Self;

    /// `true` iff any lane equals `i16::MAX` (saturation sentinel).
    fn any_saturated(self) -> bool {
        (0..Self::LANES).any(|l| self.get(l) == i16::MAX)
    }
}

macro_rules! portable_lanes {
    ($name:ident, $n:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name(pub [i16; $n]);

        impl SimdVec for $name {
            const LANES: usize = $n;

            #[inline(always)]
            fn splat(v: i16) -> Self {
                $name([v; $n])
            }

            #[inline(always)]
            fn from_fn(mut f: impl FnMut(usize) -> i16) -> Self {
                let mut a = [0i16; $n];
                for (l, slot) in a.iter_mut().enumerate() {
                    *slot = f(l);
                }
                $name(a)
            }

            #[inline(always)]
            fn get(self, lane: usize) -> i16 {
                self.0[lane]
            }

            #[inline(always)]
            fn adds(self, o: Self) -> Self {
                let mut a = [0i16; $n];
                for i in 0..$n {
                    a[i] = self.0[i].saturating_add(o.0[i]);
                }
                $name(a)
            }

            #[inline(always)]
            fn subs(self, o: Self) -> Self {
                let mut a = [0i16; $n];
                for i in 0..$n {
                    a[i] = self.0[i].saturating_sub(o.0[i]);
                }
                $name(a)
            }

            #[inline(always)]
            fn max(self, o: Self) -> Self {
                let mut a = [0i16; $n];
                for i in 0..$n {
                    a[i] = self.0[i].max(o.0[i]);
                }
                $name(a)
            }

            #[inline(always)]
            fn zero_lanes_from(self, keep: usize) -> Self {
                let mut a = self.0;
                for slot in a.iter_mut().skip(keep) {
                    *slot = 0;
                }
                $name(a)
            }
        }
    };
}

portable_lanes!(I16x4, 4, "Four saturating `i16` lanes — the paper's SSE width.");
portable_lanes!(I16x8, 8, "Eight saturating `i16` lanes — the paper's SSE2 width.");

/// Explicit SSE2 lanes (x86-64 only): the literal `PADDSW`/`PSUBSW`/
/// `PMAXSW` path. Results are identical to [`I16x8`]; this type exists
/// so the benchmarks can compare compiler autovectorisation against
/// hand-placed intrinsics, as the paper compared compiler-vectorised code
/// against intrinsics.
#[cfg(target_arch = "x86_64")]
pub mod sse2 {
    use super::SimdVec;
    use core::arch::x86_64::*;

    /// Eight saturating `i16` lanes backed by a literal `__m128i`.
    #[derive(Clone, Copy)]
    pub struct I16x8Sse2(pub __m128i);

    impl std::fmt::Debug for I16x8Sse2 {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let a = self.to_array();
            write!(f, "I16x8Sse2({a:?})")
        }
    }

    impl I16x8Sse2 {
        fn to_array(self) -> [i16; 8] {
            // SAFETY: SSE2 is a baseline feature of x86-64.
            unsafe {
                let mut a = [0i16; 8];
                _mm_storeu_si128(a.as_mut_ptr() as *mut __m128i, self.0);
                a
            }
        }

        fn from_array(a: [i16; 8]) -> Self {
            // SAFETY: SSE2 is a baseline feature of x86-64.
            unsafe { I16x8Sse2(_mm_loadu_si128(a.as_ptr() as *const __m128i)) }
        }
    }

    /// Four saturating `i16` lanes on a full-width `__m128i`: lanes 4–7
    /// carry dead values that are never read (extraction, saturation and
    /// border masking all respect `LANES = 4`). This models the paper's
    /// SSE configuration at intrinsics speed — [`super::I16x4`]'s 64-bit
    /// array form scalarises poorly.
    #[derive(Clone, Copy)]
    pub struct I16x4Sse2(pub __m128i);

    impl std::fmt::Debug for I16x4Sse2 {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let a = I16x8Sse2(self.0).to_array();
            write!(f, "I16x4Sse2({:?})", &a[..4])
        }
    }

    impl SimdVec for I16x4Sse2 {
        const LANES: usize = 4;

        #[inline(always)]
        fn splat(v: i16) -> Self {
            I16x4Sse2(I16x8Sse2::splat(v).0)
        }

        #[inline(always)]
        fn from_fn(mut f: impl FnMut(usize) -> i16) -> Self {
            I16x4Sse2(I16x8Sse2::from_fn(|l| if l < 4 { f(l) } else { 0 }).0)
        }

        #[inline(always)]
        fn get(self, lane: usize) -> i16 {
            debug_assert!(lane < 4);
            I16x8Sse2(self.0).get(lane)
        }

        #[inline(always)]
        fn adds(self, o: Self) -> Self {
            I16x4Sse2(I16x8Sse2(self.0).adds(I16x8Sse2(o.0)).0)
        }

        #[inline(always)]
        fn subs(self, o: Self) -> Self {
            I16x4Sse2(I16x8Sse2(self.0).subs(I16x8Sse2(o.0)).0)
        }

        #[inline(always)]
        fn max(self, o: Self) -> Self {
            I16x4Sse2(I16x8Sse2(self.0).max(I16x8Sse2(o.0)).0)
        }

        #[inline(always)]
        fn zero_lanes_from(self, keep: usize) -> Self {
            I16x4Sse2(I16x8Sse2(self.0).zero_lanes_from(keep.min(4)).0)
        }
    }

    impl SimdVec for I16x8Sse2 {
        const LANES: usize = 8;

        #[inline(always)]
        fn splat(v: i16) -> Self {
            // SAFETY: SSE2 is a baseline feature of x86-64.
            unsafe { I16x8Sse2(_mm_set1_epi16(v)) }
        }

        #[inline(always)]
        fn from_fn(mut f: impl FnMut(usize) -> i16) -> Self {
            let mut a = [0i16; 8];
            for (l, slot) in a.iter_mut().enumerate() {
                *slot = f(l);
            }
            Self::from_array(a)
        }

        #[inline(always)]
        fn get(self, lane: usize) -> i16 {
            self.to_array()[lane]
        }

        #[inline(always)]
        fn adds(self, o: Self) -> Self {
            // SAFETY: SSE2 is a baseline feature of x86-64.
            unsafe { I16x8Sse2(_mm_adds_epi16(self.0, o.0)) }
        }

        #[inline(always)]
        fn subs(self, o: Self) -> Self {
            // SAFETY: SSE2 is a baseline feature of x86-64.
            unsafe { I16x8Sse2(_mm_subs_epi16(self.0, o.0)) }
        }

        #[inline(always)]
        fn max(self, o: Self) -> Self {
            // SAFETY: SSE2 is a baseline feature of x86-64.
            unsafe { I16x8Sse2(_mm_max_epi16(self.0, o.0)) }
        }

        #[inline(always)]
        fn zero_lanes_from(self, keep: usize) -> Self {
            let mut a = self.to_array();
            for slot in a.iter_mut().skip(keep.min(8)) {
                *slot = 0;
            }
            Self::from_array(a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_basic<V: SimdVec>() {
        let a = V::from_fn(|l| l as i16);
        let b = V::splat(10);
        let sum = a.adds(b);
        for l in 0..V::LANES {
            assert_eq!(sum.get(l), l as i16 + 10);
        }
        let diff = b.subs(a);
        for l in 0..V::LANES {
            assert_eq!(diff.get(l), 10 - l as i16);
        }
        let m = a.max(V::splat(2));
        for l in 0..V::LANES {
            assert_eq!(m.get(l), (l as i16).max(2));
        }
    }

    fn check_saturation<V: SimdVec>() {
        let big = V::splat(i16::MAX - 1);
        let sum = big.adds(V::splat(100));
        assert!(sum.any_saturated());
        for l in 0..V::LANES {
            assert_eq!(sum.get(l), i16::MAX);
        }
        let small = V::splat(i16::MIN + 1);
        let diff = small.subs(V::splat(100));
        for l in 0..V::LANES {
            assert_eq!(diff.get(l), i16::MIN);
        }
        assert!(!V::splat(5).any_saturated());
    }

    fn check_zeroing<V: SimdVec>() {
        let a = V::splat(7);
        let z = a.zero_lanes_from(2);
        for l in 0..V::LANES {
            assert_eq!(z.get(l), if l < 2 { 7 } else { 0 });
        }
        let all = a.zero_lanes_from(V::LANES);
        for l in 0..V::LANES {
            assert_eq!(all.get(l), 7);
        }
    }

    #[test]
    fn portable_x4() {
        check_basic::<I16x4>();
        check_saturation::<I16x4>();
        check_zeroing::<I16x4>();
    }

    #[test]
    fn portable_x8() {
        check_basic::<I16x8>();
        check_saturation::<I16x8>();
        check_zeroing::<I16x8>();
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_x8_matches_portable() {
        use super::sse2::I16x8Sse2;
        check_basic::<I16x8Sse2>();
        check_saturation::<I16x8Sse2>();
        check_zeroing::<I16x8Sse2>();
        // Differential: random-ish op sequences agree lane-for-lane.
        let mut x: i32 = 12345;
        let mut next = move || {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            ((x >> 8) % 2000 - 1000) as i16
        };
        for _ in 0..100 {
            let (a, b) = (next(), next());
            let pa = I16x8::splat(a).adds(I16x8::splat(b));
            let ia = I16x8Sse2::splat(a).adds(I16x8Sse2::splat(b));
            for l in 0..8 {
                assert_eq!(pa.get(l), ia.get(l));
            }
            let pm = I16x8::splat(a).max(I16x8::splat(b)).subs(I16x8::splat(3));
            let im = I16x8Sse2::splat(a)
                .max(I16x8Sse2::splat(b))
                .subs(I16x8Sse2::splat(3));
            for l in 0..8 {
                assert_eq!(pm.get(l), im.get(l));
            }
        }
    }
}
