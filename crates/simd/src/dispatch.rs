//! Runtime kernel dispatch: probe the CPU once, pick the widest safe
//! kernel.
//!
//! The lane types in [`crate::lanes`] fall into three *dispatch paths*:
//!
//! * [`DispatchPath::Portable`] — the `[T; N]` array kernels; always
//!   available, autovectorised by LLVM;
//! * [`DispatchPath::Sse2`] — explicit `__m128i` kernels; available on
//!   every x86-64 CPU (SSE2 is baseline), 4 or 8 `i16` lanes;
//! * [`DispatchPath::Avx2`] — explicit `__m256i` kernels; 16 `i16`
//!   lanes, **requires runtime detection** via
//!   `is_x86_feature_detected!("avx2")`.
//!
//! [`select`] resolves a user's (possibly partial) request into a
//! concrete [`SimdSel`], erroring with a typed [`DispatchError`] when
//! the request cannot be satisfied on the running CPU — e.g. forcing
//! `--dispatch sse2 --lanes 16`. The AVX2 probe runs **once** per
//! process (cached in a `OnceLock`).
//!
//! The sweep entry points ([`sweep_group_profile_i16`] and friends) are
//! the only place the program crosses from "runtime-selected path" to
//! "concrete monomorphised kernel". The AVX2 arms go through
//! `#[target_feature(enable = "avx2")]` trampolines so the
//! `#[inline(always)]` generic sweep bodies in [`crate::group`] are
//! codegenned *inside* an AVX2-enabled function — without this, the
//! intrinsics would be called as opaque functions and the 16-lane
//! kernel would be slower than the 8-lane one.

use crate::group::{
    align_group_lookup_impl, align_group_profile_at_impl, align_group_profile_impl, group_stripe,
    GroupCapture, GroupResult, GroupResume,
};
use crate::LaneWidth;
use repro_align::{QueryProfile, Scoring};
use repro_core::OverrideTriangle;

#[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
use crate::lanes::{avx2::I16x16Avx2, sse2::I16x4Sse2, sse2::I16x8Sse2};
use crate::lanes::{I16x16, I16x4, I16x8, I32x16, I32x4, I32x8};

/// A family of SIMD kernels the dispatcher can route a sweep to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPath {
    /// Portable array kernels (always available).
    Portable,
    /// Explicit SSE2 (`__m128i`) kernels — x86-64 baseline.
    Sse2,
    /// Explicit AVX2 (`__m256i`) kernels — needs runtime detection.
    Avx2,
}

impl std::fmt::Display for DispatchPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DispatchPath::Portable => "portable",
            DispatchPath::Sse2 => "sse2",
            DispatchPath::Avx2 => "avx2",
        })
    }
}

/// One-shot AVX2 probe, cached for the life of the process.
#[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
fn avx2_runtime() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Is `path` usable in this build *and* on the running CPU?
pub fn available(path: DispatchPath) -> bool {
    match path {
        DispatchPath::Portable => true,
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
        DispatchPath::Sse2 => true,
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
        DispatchPath::Avx2 => avx2_runtime(),
        #[cfg(not(all(target_arch = "x86_64", not(feature = "portable-only"))))]
        _ => false,
    }
}

/// The best available path on this CPU: AVX2 > SSE2 > portable.
pub fn auto_path() -> DispatchPath {
    if available(DispatchPath::Avx2) {
        DispatchPath::Avx2
    } else if available(DispatchPath::Sse2) {
        DispatchPath::Sse2
    } else {
        DispatchPath::Portable
    }
}

/// Widest lane count a path's `i16` kernels support. Portable arrays
/// exist at every width; SSE2 registers cap out at 8 × `i16`.
pub fn max_width(path: DispatchPath) -> LaneWidth {
    match path {
        DispatchPath::Portable => LaneWidth::X16,
        DispatchPath::Sse2 => LaneWidth::X8,
        DispatchPath::Avx2 => LaneWidth::X16,
    }
}

/// A fully resolved kernel selection: what [`select`] hands to the
/// engines and what the sweep dispatchers consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdSel {
    /// Lane width of the narrow (`i16`) sweeps.
    pub width: LaneWidth,
    /// Kernel family the sweeps route to.
    pub path: DispatchPath,
}

impl std::fmt::Display for SimdSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.path, self.width.lanes())
    }
}

/// Why a dispatch request could not be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchError {
    /// The requested path does not exist in this build or on this CPU.
    PathUnavailable {
        /// The path that was asked for.
        path: DispatchPath,
    },
    /// The requested lane width exceeds what the (requested or resolved)
    /// path can do.
    WidthUnsupported {
        /// The width that was asked for.
        width: LaneWidth,
        /// The path it was asked of.
        path: DispatchPath,
        /// That path's actual maximum.
        max: LaneWidth,
    },
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::PathUnavailable { path } => write!(
                f,
                "the {path} dispatch path is not available on this CPU/build"
            ),
            DispatchError::WidthUnsupported { width, path, max } => write!(
                f,
                "lane width {} exceeds the {path} dispatch path's maximum of {}",
                width.lanes(),
                max.lanes()
            ),
        }
    }
}

impl std::error::Error for DispatchError {}

/// Resolve a (possibly partial) request into a concrete [`SimdSel`].
///
/// * both `None` — the widest kernel the CPU has: AVX2 ×16, else
///   SSE2 ×8, else portable ×16;
/// * width only — the fastest path that supports it (×16 prefers AVX2,
///   ×4/×8 prefer SSE2; portable otherwise). Never fails: the portable
///   kernels cover every width;
/// * path only — that path at its widest, or [`DispatchError::PathUnavailable`];
/// * both — exactly what was asked, or a typed error (e.g. SSE2 ×16 is
///   [`DispatchError::WidthUnsupported`] even on an AVX2 machine).
pub fn select(
    width: Option<LaneWidth>,
    path: Option<DispatchPath>,
) -> Result<SimdSel, DispatchError> {
    let path = match path {
        Some(p) => {
            if !available(p) {
                return Err(DispatchError::PathUnavailable { path: p });
            }
            p
        }
        None => match width {
            Some(LaneWidth::X16) if available(DispatchPath::Avx2) => DispatchPath::Avx2,
            Some(LaneWidth::X4) | Some(LaneWidth::X8) if available(DispatchPath::Sse2) => {
                DispatchPath::Sse2
            }
            Some(_) => DispatchPath::Portable,
            None => auto_path(),
        },
    };
    let max = max_width(path);
    let width = match width {
        Some(w) => {
            if w.lanes() > max.lanes() {
                return Err(DispatchError::WidthUnsupported {
                    width: w,
                    path,
                    max,
                });
            }
            w
        }
        None => max,
    };
    Ok(SimdSel { width, path })
}

// ---------------------------------------------------------------------------
// AVX2 trampolines.
//
// `unsafe` contract: the caller must have verified AVX2 support (every
// call below is reached only through a `SimdSel` whose construction
// checked `available(Avx2)`). The bodies are safe; the attribute exists
// so the `#[inline(always)]` sweep impls inline into AVX2 codegen.
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
#[target_feature(enable = "avx2")]
unsafe fn profile_i16_avx2(
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<i16>,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
) -> GroupResult {
    align_group_profile_impl::<I16x16Avx2>(seq, scoring, profile, r0, lanes, triangle, stripe)
}

#[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // mirrors the kernel's full state
unsafe fn profile_i16_at_avx2(
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<i16>,
    rs: &[usize],
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
    resume: Option<&GroupResume<'_>>,
    capture_rows: &[usize],
) -> (GroupResult, Vec<GroupCapture>) {
    align_group_profile_at_impl::<I16x16Avx2>(
        seq,
        scoring,
        profile,
        rs,
        triangle,
        stripe,
        resume,
        capture_rows,
    )
}

#[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
#[target_feature(enable = "avx2")]
unsafe fn lookup_i16_avx2(
    seq: &[u8],
    scoring: &Scoring,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
    stripe: usize,
) -> GroupResult {
    align_group_lookup_impl::<I16x16Avx2>(seq, scoring, r0, lanes, triangle, stripe)
}

/// The narrow (`i16`) query-profile sweep, routed to the selected
/// kernel. Bit-identical results on every path; stripe width derives
/// from the L1 rule for the selected lane count.
pub fn sweep_group_profile_i16(
    sel: SimdSel,
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<i16>,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
) -> GroupResult {
    let stripe = group_stripe(sel.width.lanes(), 2);
    match (sel.path, sel.width) {
        (DispatchPath::Portable, LaneWidth::X4) => {
            align_group_profile_impl::<I16x4>(seq, scoring, profile, r0, lanes, triangle, stripe)
        }
        (DispatchPath::Portable, LaneWidth::X8) => {
            align_group_profile_impl::<I16x8>(seq, scoring, profile, r0, lanes, triangle, stripe)
        }
        (DispatchPath::Portable, LaneWidth::X16) => {
            align_group_profile_impl::<I16x16>(seq, scoring, profile, r0, lanes, triangle, stripe)
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
        (DispatchPath::Sse2 | DispatchPath::Avx2, LaneWidth::X4) => {
            align_group_profile_impl::<I16x4Sse2>(
                seq, scoring, profile, r0, lanes, triangle, stripe,
            )
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
        (DispatchPath::Sse2 | DispatchPath::Avx2, LaneWidth::X8) => {
            align_group_profile_impl::<I16x8Sse2>(
                seq, scoring, profile, r0, lanes, triangle, stripe,
            )
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
        (DispatchPath::Avx2, LaneWidth::X16) => {
            // SAFETY: sel.path == Avx2 implies `available(Avx2)` held when
            // the selection was made (select() is the only constructor used
            // by the engines, and tests that build SimdSel by hand gate on
            // the same probe).
            unsafe { profile_i16_avx2(seq, scoring, profile, r0, lanes, triangle, stripe) }
        }
        _ => unreachable!("select() never yields {:?}", sel),
    }
}

/// [`sweep_group_profile_i16`] generalised to an arbitrary ascending
/// split set with optional mid-matrix resume and inter-row capture —
/// the compacted-resume entry point of the incremental layer.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's full state
pub fn sweep_group_profile_i16_at(
    sel: SimdSel,
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<i16>,
    rs: &[usize],
    triangle: Option<&OverrideTriangle>,
    resume: Option<&GroupResume<'_>>,
    capture_rows: &[usize],
) -> (GroupResult, Vec<GroupCapture>) {
    let stripe = group_stripe(sel.width.lanes(), 2);
    match (sel.path, sel.width) {
        (DispatchPath::Portable, LaneWidth::X4) => align_group_profile_at_impl::<I16x4>(
            seq,
            scoring,
            profile,
            rs,
            triangle,
            stripe,
            resume,
            capture_rows,
        ),
        (DispatchPath::Portable, LaneWidth::X8) => align_group_profile_at_impl::<I16x8>(
            seq,
            scoring,
            profile,
            rs,
            triangle,
            stripe,
            resume,
            capture_rows,
        ),
        (DispatchPath::Portable, LaneWidth::X16) => align_group_profile_at_impl::<I16x16>(
            seq,
            scoring,
            profile,
            rs,
            triangle,
            stripe,
            resume,
            capture_rows,
        ),
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
        (DispatchPath::Sse2 | DispatchPath::Avx2, LaneWidth::X4) => {
            align_group_profile_at_impl::<I16x4Sse2>(
                seq,
                scoring,
                profile,
                rs,
                triangle,
                stripe,
                resume,
                capture_rows,
            )
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
        (DispatchPath::Sse2 | DispatchPath::Avx2, LaneWidth::X8) => {
            align_group_profile_at_impl::<I16x8Sse2>(
                seq,
                scoring,
                profile,
                rs,
                triangle,
                stripe,
                resume,
                capture_rows,
            )
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
        (DispatchPath::Avx2, LaneWidth::X16) => {
            // SAFETY: as in `sweep_group_profile_i16`.
            unsafe {
                profile_i16_at_avx2(
                    seq,
                    scoring,
                    profile,
                    rs,
                    triangle,
                    stripe,
                    resume,
                    capture_rows,
                )
            }
        }
        _ => unreachable!("select() never yields {:?}", sel),
    }
}

/// The narrow (`i16`) per-cell **lookup** sweep — the pre-profile
/// kernel, kept routable so benchmarks can measure exactly what the
/// profile buys at every width/path.
pub fn sweep_group_lookup_i16(
    sel: SimdSel,
    seq: &[u8],
    scoring: &Scoring,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
) -> GroupResult {
    let stripe = group_stripe(sel.width.lanes(), 2);
    match (sel.path, sel.width) {
        (DispatchPath::Portable, LaneWidth::X4) => {
            align_group_lookup_impl::<I16x4>(seq, scoring, r0, lanes, triangle, stripe)
        }
        (DispatchPath::Portable, LaneWidth::X8) => {
            align_group_lookup_impl::<I16x8>(seq, scoring, r0, lanes, triangle, stripe)
        }
        (DispatchPath::Portable, LaneWidth::X16) => {
            align_group_lookup_impl::<I16x16>(seq, scoring, r0, lanes, triangle, stripe)
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
        (DispatchPath::Sse2 | DispatchPath::Avx2, LaneWidth::X4) => {
            align_group_lookup_impl::<I16x4Sse2>(seq, scoring, r0, lanes, triangle, stripe)
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
        (DispatchPath::Sse2 | DispatchPath::Avx2, LaneWidth::X8) => {
            align_group_lookup_impl::<I16x8Sse2>(seq, scoring, r0, lanes, triangle, stripe)
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
        (DispatchPath::Avx2, LaneWidth::X16) => {
            // SAFETY: as in `sweep_group_profile_i16`.
            unsafe { lookup_i16_avx2(seq, scoring, r0, lanes, triangle, stripe) }
        }
        _ => unreachable!("select() never yields {:?}", sel),
    }
}

/// The wide (`i32`) promotion sweep: always the portable kernels (the
/// wrapping `i32` arithmetic autovectorises to plain `PADDD`/`PMAXSD`),
/// bit-identical to the scalar reference at any width.
pub fn sweep_group_wide(
    width: LaneWidth,
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<i32>,
    r0: usize,
    lanes: usize,
    triangle: Option<&OverrideTriangle>,
) -> GroupResult {
    let stripe = group_stripe(width.lanes(), 4);
    match width {
        LaneWidth::X4 => {
            align_group_profile_impl::<I32x4>(seq, scoring, profile, r0, lanes, triangle, stripe)
        }
        LaneWidth::X8 => {
            align_group_profile_impl::<I32x8>(seq, scoring, profile, r0, lanes, triangle, stripe)
        }
        LaneWidth::X16 => {
            align_group_profile_impl::<I32x16>(seq, scoring, profile, r0, lanes, triangle, stripe)
        }
    }
}

/// [`sweep_group_wide`] generalised to an arbitrary ascending split set
/// with optional mid-matrix resume and inter-row capture.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's full state
pub fn sweep_group_wide_at(
    width: LaneWidth,
    seq: &[u8],
    scoring: &Scoring,
    profile: &QueryProfile<i32>,
    rs: &[usize],
    triangle: Option<&OverrideTriangle>,
    resume: Option<&GroupResume<'_>>,
    capture_rows: &[usize],
) -> (GroupResult, Vec<GroupCapture>) {
    let stripe = group_stripe(width.lanes(), 4);
    match width {
        LaneWidth::X4 => align_group_profile_at_impl::<I32x4>(
            seq,
            scoring,
            profile,
            rs,
            triangle,
            stripe,
            resume,
            capture_rows,
        ),
        LaneWidth::X8 => align_group_profile_at_impl::<I32x8>(
            seq,
            scoring,
            profile,
            rs,
            triangle,
            stripe,
            resume,
            capture_rows,
        ),
        LaneWidth::X16 => align_group_profile_at_impl::<I32x16>(
            seq,
            scoring,
            profile,
            rs,
            triangle,
            stripe,
            resume,
            capture_rows,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repro_align::Seq;

    #[test]
    fn portable_is_always_available() {
        assert!(available(DispatchPath::Portable));
        let sel = select(None, Some(DispatchPath::Portable)).unwrap();
        assert_eq!(
            sel,
            SimdSel {
                width: LaneWidth::X16,
                path: DispatchPath::Portable
            }
        );
    }

    #[test]
    fn full_auto_never_fails() {
        let sel = select(None, None).unwrap();
        assert_eq!(sel.path, auto_path());
        assert_eq!(sel.width, max_width(sel.path));
    }

    #[test]
    fn width_only_never_fails() {
        for w in [LaneWidth::X4, LaneWidth::X8, LaneWidth::X16] {
            let sel = select(Some(w), None).unwrap();
            assert_eq!(sel.width, w);
            assert!(available(sel.path));
        }
    }

    #[test]
    fn sse2_refuses_sixteen_lanes() {
        // Even on an AVX2 machine: the user pinned the path.
        match select(Some(LaneWidth::X16), Some(DispatchPath::Sse2)) {
            Err(DispatchError::WidthUnsupported { width, path, max }) => {
                assert_eq!(width, LaneWidth::X16);
                assert_eq!(path, DispatchPath::Sse2);
                assert_eq!(max, LaneWidth::X8);
            }
            Err(DispatchError::PathUnavailable { path }) => {
                // portable-only build / non-x86: also a typed error.
                assert_eq!(path, DispatchPath::Sse2);
            }
            Ok(sel) => panic!("sse2 x16 must not resolve, got {sel}"),
        }
    }

    #[test]
    fn error_messages_name_the_path() {
        let e = DispatchError::WidthUnsupported {
            width: LaneWidth::X16,
            path: DispatchPath::Sse2,
            max: LaneWidth::X8,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("16") && msg.contains("sse2") && msg.contains('8'),
            "{msg}"
        );
        let e = DispatchError::PathUnavailable {
            path: DispatchPath::Avx2,
        };
        assert!(e.to_string().contains("avx2"));
    }

    #[test]
    fn every_selectable_kernel_agrees_on_rows() {
        let seq = Seq::dna("ATGCATGCATGCACGGTTACGTAACCGGTTAC").unwrap();
        let scoring = Scoring::dna_example();
        let prof = QueryProfile::new_narrow(&scoring, seq.codes()).unwrap();
        let reference = sweep_group_profile_i16(
            SimdSel {
                width: LaneWidth::X4,
                path: DispatchPath::Portable,
            },
            seq.codes(),
            &scoring,
            &prof,
            3,
            4,
            None,
        );
        for path in [
            DispatchPath::Portable,
            DispatchPath::Sse2,
            DispatchPath::Avx2,
        ] {
            if !available(path) {
                continue;
            }
            for width in [LaneWidth::X4, LaneWidth::X8, LaneWidth::X16] {
                let Ok(sel) = select(Some(width), Some(path)) else {
                    continue;
                };
                let got = sweep_group_profile_i16(sel, seq.codes(), &scoring, &prof, 3, 4, None);
                assert_eq!(got.rows, reference.rows, "{sel}");
                let lk = sweep_group_lookup_i16(sel, seq.codes(), &scoring, 3, 4, None);
                assert_eq!(lk.rows, reference.rows, "lookup {sel}");
            }
        }
        let wide_prof = QueryProfile::new_wide(&scoring, seq.codes());
        for width in [LaneWidth::X4, LaneWidth::X8, LaneWidth::X16] {
            let got = sweep_group_wide(width, seq.codes(), &scoring, &wide_prof, 3, 4, None);
            assert_eq!(got.rows, reference.rows, "wide x{}", width.lanes());
        }
    }
}
