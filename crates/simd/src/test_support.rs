//! Shared test-support helpers.
//!
//! Hardware-gated tests (the AVX2 kernels) must skip, not fail, on CPUs
//! without the feature — but an ad-hoc `eprintln!` + `return` loses the
//! information that coverage was reduced. [`skip`] is the one funnel:
//! it prints the notice *and* records `(test, reason)` so a meta-test
//! (or a human reading the log) can see exactly which tests were
//! skipped and why.

use std::sync::Mutex;

/// Every `(test name, reason)` skipped so far in this process.
static SKIPPED: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

/// Record that `test` was skipped because of `reason`, and print the
/// notice the old ad-hoc `eprintln!`s used to.
pub fn skip(test: &str, reason: &str) {
    eprintln!("skipping {test}: {reason}");
    SKIPPED
        .lock()
        .expect("skip registry poisoned")
        .push((test.to_string(), reason.to_string()));
}

/// Snapshot of the skip registry.
pub fn skipped() -> Vec<(String, String)> {
    SKIPPED.lock().expect("skip registry poisoned").clone()
}

/// `true` iff the running CPU has AVX2; otherwise records the skip for
/// `test` and returns `false` (callers `return` early).
#[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
pub fn require_avx2(test: &str) -> bool {
    if std::arch::is_x86_feature_detected!("avx2") {
        true
    } else {
        skip(test, "no AVX2 on this CPU");
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_records_test_and_reason() {
        skip("some_gated_test", "hardware feature missing");
        let all = skipped();
        assert!(all
            .iter()
            .any(|(t, r)| t == "some_gated_test" && r == "hardware feature missing"));
    }
}
