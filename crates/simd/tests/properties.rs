//! Property tests: the lane vectors obey their scalar element oracle
//! on arbitrary inputs, and the interleaved group kernel and the group
//! engine are exact drop-ins for their scalar counterparts on
//! arbitrary inputs, masks, lane counts and group positions.

use proptest::prelude::*;
use repro_align::{sw_last_row, Alphabet, Score, Scoring, Seq};
use repro_core::{find_top_alignments, OverrideTriangle, SplitMask};
use repro_simd::group::align_group;
use repro_simd::lanes::{
    I16x16, I16x4, I16x8, I32x16, I32x4, I32x8, NativeI16x4, NativeI16x8, SimdElem, SimdVec,
};
use repro_obs::NoopRecorder;
use repro_simd::{
    find_top_alignments_simd, find_top_alignments_simd_checkpointed, find_top_alignments_simd_sel,
    select, DispatchPath, GroupResume, GroupSweeper, LaneResume, LaneWidth,
};

/// Check every `SimdVec` operation of `V` against the scalar element
/// oracle ([`SimdElem`]'s `vadd`/`vsub`, `Ord::max`, and the `MAX`
/// saturation sentinel), lane by lane. The portable types are defined
/// *via* the element ops, so for them this is a consistency check; for
/// the `core::arch` types it proves the intrinsics implement the same
/// semantics (saturating `i16`, wrapping `i32`).
fn check_lane_ops<V: SimdVec>(a16: &[i16], b16: &[i16], keep: usize) -> Result<(), TestCaseError> {
    let conv =
        |x: i16| <V::Elem as SimdElem>::from_score(x as Score).expect("i16 fits every element");
    let keep = keep % (V::LANES + 2); // exercise keep == LANES and beyond
    let a = V::from_fn(|l| conv(a16[l % a16.len()]));
    let b = V::from_fn(|l| conv(b16[l % b16.len()]));

    // from_fn / get round-trip, and splat.
    let s = V::splat(conv(a16[0]));
    for l in 0..V::LANES {
        prop_assert_eq!(a.get(l), conv(a16[l % a16.len()]), "from_fn lane {}", l);
        prop_assert_eq!(s.get(l), conv(a16[0]), "splat lane {}", l);
    }

    let (add, sub, max) = (a.adds(b), a.subs(b), a.max(b));
    let zeroed = a.zero_lanes_from(keep.min(V::LANES));
    for l in 0..V::LANES {
        let (x, y) = (a.get(l), b.get(l));
        prop_assert_eq!(add.get(l), x.vadd(y), "adds lane {}", l);
        prop_assert_eq!(sub.get(l), x.vsub(y), "subs lane {}", l);
        prop_assert_eq!(max.get(l), x.max(y), "max lane {}", l);
        let want = if l >= keep.min(V::LANES) {
            V::Elem::ZERO
        } else {
            x
        };
        prop_assert_eq!(zeroed.get(l), want, "zero_lanes_from({}) lane {}", keep, l);
    }

    for v in [a, b, add, sub, max, zeroed] {
        let oracle = (0..V::LANES).any(|l| v.get(l) == V::Elem::MAX);
        prop_assert_eq!(v.any_saturated(), oracle, "any_saturated");
    }
    Ok(())
}

fn arb_dna(min: usize, max: usize) -> impl Strategy<Value = Seq> {
    prop::collection::vec(0u8..4, min..=max).prop_map(|codes| Seq::from_codes(Alphabet::Dna, codes))
}

fn arb_triangle(m: usize) -> impl Strategy<Value = OverrideTriangle> {
    prop::collection::vec((0usize..m.max(2), 0usize..m.max(2)), 0..12).prop_map(move |pairs| {
        let mut t = OverrideTriangle::new(m);
        for (a, b) in pairs {
            let (p, q) = (a.min(b), a.max(b));
            if p < q && q < m {
                t.set(p, q);
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every lane op of every vector type — portable arrays at 4/8/16
    /// lanes over both elements, and (on x86-64) the SSE2 and AVX2
    /// intrinsics types — matches the scalar element oracle. Inputs
    /// span the full `i16` range, so saturation and the sentinel are
    /// exercised constantly.
    #[test]
    fn lane_ops_match_scalar_oracle(
        a in prop::collection::vec(any::<i16>(), 16),
        b in prop::collection::vec(any::<i16>(), 16),
        keep in 0usize..64,
    ) {
        check_lane_ops::<I16x4>(&a, &b, keep)?;
        check_lane_ops::<I16x8>(&a, &b, keep)?;
        check_lane_ops::<I16x16>(&a, &b, keep)?;
        check_lane_ops::<I32x4>(&a, &b, keep)?;
        check_lane_ops::<I32x8>(&a, &b, keep)?;
        check_lane_ops::<I32x16>(&a, &b, keep)?;
        // On x86-64 these alias the SSE2 intrinsics types; elsewhere
        // (and under `portable-only`) they re-check the arrays.
        check_lane_ops::<NativeI16x4>(&a, &b, keep)?;
        check_lane_ops::<NativeI16x8>(&a, &b, keep)?;
        #[cfg(all(target_arch = "x86_64", not(feature = "portable-only")))]
        if std::arch::is_x86_feature_detected!("avx2") {
            check_lane_ops::<repro_simd::lanes::avx2::I16x16Avx2>(&a, &b, keep)?;
        }
    }

    /// Every lane of a group reproduces the scalar kernel's bottom row,
    /// for any group position, live-lane count and override triangle.
    #[test]
    fn group_rows_equal_scalar_rows(
        seq in arb_dna(10, 40),
        r0_frac in 0.0f64..1.0,
        lanes in 1usize..=8,
        use_mask in any::<bool>(),
        tri_seed in prop::collection::vec((0usize..40, 0usize..40), 0..10),
    ) {
        let m = seq.len();
        let scoring = Scoring::dna_example();
        let max_lanes = lanes.min(m - 1);
        let r0 = 1 + ((r0_frac * (m - 1 - max_lanes) as f64) as usize);
        let lanes = max_lanes.min(m - r0);
        prop_assume!(lanes >= 1 && r0 + lanes - 1 < m);

        let mut t = OverrideTriangle::new(m);
        for (a, b) in tri_seed {
            let (p, q) = (a.min(b), a.max(b));
            if p < q && q < m {
                t.set(p, q);
            }
        }
        let tri = if use_mask { Some(&t) } else { None };

        let check = |rows: &[Vec<i32>]| -> Result<(), TestCaseError> {
            for (l, row) in rows.iter().enumerate() {
                let r = r0 + l;
                let (prefix, suffix) = seq.split(r);
                let want = match tri {
                    Some(t) => sw_last_row(prefix, suffix, &scoring, SplitMask::new(t, r)).row,
                    None => sw_last_row(prefix, suffix, &scoring, repro_align::NoMask).row,
                };
                prop_assert_eq!(row, &want, "lane {} (split {})", l, r);
            }
            Ok(())
        };

        if lanes <= 4 {
            let g = align_group::<I16x4>(seq.codes(), &scoring, r0, lanes, tri);
            prop_assert!(!g.saturated);
            check(&g.rows)?;
        }
        let g = align_group::<I16x8>(seq.codes(), &scoring, r0, lanes, tri);
        prop_assert!(!g.saturated);
        check(&g.rows)?;
    }

    /// The group engine finds exactly the sequential engine's
    /// alignments — at every lane width, and on the portable path as
    /// well as whatever the auto-dispatcher picks for this CPU.
    #[test]
    fn engine_equals_sequential(seq in arb_dna(2, 36), count in 1usize..6) {
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, count);
        for width in [LaneWidth::X4, LaneWidth::X8, LaneWidth::X16] {
            let got = find_top_alignments_simd(&seq, &scoring, count, width);
            prop_assert_eq!(
                &got.result.alignments, &want.alignments,
                "{:?} diverged", width
            );
            let sel = select(Some(width), Some(DispatchPath::Portable))
                .expect("portable supports every width");
            let got = find_top_alignments_simd_sel(&seq, &scoring, count, sel);
            prop_assert_eq!(
                &got.result.alignments, &want.alignments,
                "portable {:?} diverged", width
            );
        }
    }

    /// Triangle strategy sanity (exercise the helper above too).
    #[test]
    fn triangle_strategy_is_well_formed(t in arb_triangle(30)) {
        for (p, q) in t.iter() {
            prop_assert!(p < q && q < 30);
        }
    }

    /// A compacted-resume sweep of an arbitrary ascending split pack —
    /// exactly what the engines run after partitioning out clean
    /// lanes — reproduces the per-lane scalar bottom rows bit-for-bit,
    /// whether swept from scratch or resumed from a mid-matrix capture.
    #[test]
    fn compacted_resume_matches_scalar_oracle(
        seq in arb_dna(12, 44),
        pack_seed in prop::collection::vec(any::<u16>(), 1..=8),
        tri in arb_triangle(44),
        resume_frac in 0.0f64..1.0,
    ) {
        let m = seq.len();
        let scoring = Scoring::dna_example();
        // An arbitrary ascending split pack (duplicates collapsed), the
        // shape lane compaction produces when clean lanes drop out.
        let mut rs: Vec<usize> = pack_seed.iter().map(|&s| 1 + (s as usize) % (m - 1)).collect();
        rs.sort_unstable();
        rs.dedup();
        let triangle = Some(&tri);

        let scalar_rows: Vec<Vec<Score>> = rs
            .iter()
            .map(|&r| {
                let (prefix, suffix) = seq.split(r);
                sw_last_row(prefix, suffix, &scoring, SplitMask::new(&tri, r)).row
            })
            .collect();

        for width in [LaneWidth::X4, LaneWidth::X8, LaneWidth::X16] {
            let sel = select(Some(width), Some(DispatchPath::Portable))
                .expect("portable supports every width");
            let sweeper = GroupSweeper::new(&seq, &scoring, sel);
            // A pack never exceeds the kernel's lane count.
            let rs = &rs[..rs.len().min(width.lanes())];
            let scalar_rows = &scalar_rows[..rs.len()];

            // From scratch, capturing a mid-matrix row to resume from.
            let rmin = rs[0];
            let cap_row = 1 + ((resume_frac * (rmin - 1) as f64) as usize).min(rmin - 1);
            let capture_rows: Vec<usize> = if cap_row < rs[rs.len() - 1] {
                vec![cap_row]
            } else {
                Vec::new()
            };
            let (scratch, caps) = sweeper.sweep_at(rs, triangle, None, &capture_rows);
            prop_assert_eq!(&scratch.group.rows[..], scalar_rows, "{:?} scratch", width);

            // Resume from the captured state: every lane restarts at the
            // shared row, and the bottom rows must not change by a bit.
            if let Some(cap) = caps.iter().find(|c| c.lanes.iter().all(|l| l.is_some())) {
                let lanes: Vec<LaneResume<'_>> = cap
                    .lanes
                    .iter()
                    .map(|l| {
                        let (cm, cmaxy) = l.as_ref().expect("all lanes captured");
                        LaneResume { m: cm, maxy: cmaxy }
                    })
                    .collect();
                let resume = GroupResume { row: cap.row, lanes };
                let (resumed, _) = sweeper.sweep_at(rs, triangle, Some(&resume), &[]);
                prop_assert_eq!(
                    &resumed.group.rows[..], scalar_rows,
                    "{:?} resume at row {}", width, cap.row
                );
            }
        }
    }

    /// The checkpointed SIMD engine is bit-identical to the sequential
    /// engine at every lane width and budget — including budget 0 (the
    /// accounting-only mode) — and the lane-skip counter never shrinks
    /// as the budget grows (budget 0 admits no skips at all).
    #[test]
    fn checkpointed_engine_is_exact_and_skips_monotonically(
        seq in arb_dna(8, 40),
        count in 1usize..6,
    ) {
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, count);
        for width in [LaneWidth::X4, LaneWidth::X8, LaneWidth::X16] {
            let sel = select(Some(width), Some(DispatchPath::Portable))
                .expect("portable supports every width");
            let mut skipped_at = Vec::new();
            for budget in [0usize, 64 << 10, 1 << 20] {
                let got = find_top_alignments_simd_checkpointed(
                    &seq, &scoring, count, sel, Some(budget), &mut NoopRecorder,
                );
                prop_assert_eq!(
                    &got.result.alignments, &want.alignments,
                    "{:?} budget {} diverged", width, budget
                );
                skipped_at.push(got.result.stats.lanes_skipped);
            }
            prop_assert_eq!(skipped_at[0], 0, "budget 0 must not skip lanes");
            prop_assert!(
                skipped_at[1] <= skipped_at[2],
                "{:?}: lane skips shrank with a larger budget: {:?}",
                width, skipped_at
            );
        }
    }
}
