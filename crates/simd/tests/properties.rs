//! Property tests: the interleaved group kernel and the group engine
//! are exact drop-ins for their scalar counterparts on arbitrary
//! inputs, masks, lane counts and group positions.

use proptest::prelude::*;
use repro_align::{sw_last_row, Alphabet, Scoring, Seq};
use repro_core::{find_top_alignments, OverrideTriangle, SplitMask};
use repro_simd::group::align_group;
use repro_simd::lanes::{I16x4, I16x8};
use repro_simd::{find_top_alignments_simd, LaneWidth};

fn arb_dna(min: usize, max: usize) -> impl Strategy<Value = Seq> {
    prop::collection::vec(0u8..4, min..=max)
        .prop_map(|codes| Seq::from_codes(Alphabet::Dna, codes))
}

fn arb_triangle(m: usize) -> impl Strategy<Value = OverrideTriangle> {
    prop::collection::vec((0usize..m.max(2), 0usize..m.max(2)), 0..12).prop_map(move |pairs| {
        let mut t = OverrideTriangle::new(m);
        for (a, b) in pairs {
            let (p, q) = (a.min(b), a.max(b));
            if p < q && q < m {
                t.set(p, q);
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every lane of a group reproduces the scalar kernel's bottom row,
    /// for any group position, live-lane count and override triangle.
    #[test]
    fn group_rows_equal_scalar_rows(
        seq in arb_dna(10, 40),
        r0_frac in 0.0f64..1.0,
        lanes in 1usize..=8,
        use_mask in any::<bool>(),
        tri_seed in prop::collection::vec((0usize..40, 0usize..40), 0..10),
    ) {
        let m = seq.len();
        let scoring = Scoring::dna_example();
        let max_lanes = lanes.min(m - 1);
        let r0 = 1 + ((r0_frac * (m - 1 - max_lanes) as f64) as usize);
        let lanes = max_lanes.min(m - r0);
        prop_assume!(lanes >= 1 && r0 + lanes - 1 < m);

        let mut t = OverrideTriangle::new(m);
        for (a, b) in tri_seed {
            let (p, q) = (a.min(b), a.max(b));
            if p < q && q < m {
                t.set(p, q);
            }
        }
        let tri = if use_mask { Some(&t) } else { None };

        let check = |rows: &[Vec<i32>]| -> Result<(), TestCaseError> {
            for (l, row) in rows.iter().enumerate() {
                let r = r0 + l;
                let (prefix, suffix) = seq.split(r);
                let want = match tri {
                    Some(t) => sw_last_row(prefix, suffix, &scoring, SplitMask::new(t, r)).row,
                    None => sw_last_row(prefix, suffix, &scoring, repro_align::NoMask).row,
                };
                prop_assert_eq!(row, &want, "lane {} (split {})", l, r);
            }
            Ok(())
        };

        if lanes <= 4 {
            let g = align_group::<I16x4>(seq.codes(), &scoring, r0, lanes, tri);
            prop_assert!(!g.saturated);
            check(&g.rows)?;
        }
        let g = align_group::<I16x8>(seq.codes(), &scoring, r0, lanes, tri);
        prop_assert!(!g.saturated);
        check(&g.rows)?;
    }

    /// The group engine finds exactly the sequential engine's alignments.
    #[test]
    fn engine_equals_sequential(seq in arb_dna(2, 36), count in 1usize..6) {
        let scoring = Scoring::dna_example();
        let want = find_top_alignments(&seq, &scoring, count);
        for width in [LaneWidth::X4, LaneWidth::X8] {
            let got = find_top_alignments_simd(&seq, &scoring, count, width);
            prop_assert_eq!(
                &got.result.alignments, &want.alignments,
                "{:?} diverged", width
            );
        }
    }

    /// Triangle strategy sanity (exercise the helper above too).
    #[test]
    fn triangle_strategy_is_well_formed(t in arb_triangle(30)) {
        for (p, q) in t.iter() {
            prop_assert!(p < q && q < 30);
        }
    }
}
